type t = { dt : float; labels : string array; amps : float array array }

let make ~dt ~labels amps =
  if dt <= 0. then invalid_arg "Pulse.make: non-positive dt";
  let nc = Array.length labels in
  Array.iter
    (fun row ->
      if Array.length row <> nc then invalid_arg "Pulse.make: ragged amplitudes")
    amps;
  { dt; labels; amps }

let constant ~dt ~labels ~steps amplitudes =
  make ~dt ~labels (Array.init steps (fun _ -> Array.copy amplitudes))

let n_steps p = Array.length p.amps
let n_channels p = Array.length p.labels
let duration p = p.dt *. float_of_int (n_steps p)

let concat a b =
  if a.dt <> b.dt then invalid_arg "Pulse.concat: dt mismatch";
  if a.labels <> b.labels then invalid_arg "Pulse.concat: channel mismatch";
  { a with amps = Array.append (Array.map Array.copy a.amps) (Array.map Array.copy b.amps) }

let channel_index p label =
  let found = ref (-1) in
  Array.iteri (fun k l -> if l = label then found := k) p.labels;
  if !found < 0 then raise Not_found;
  !found

let max_amplitude p label =
  let ch = channel_index p label in
  Array.fold_left (fun acc row -> Float.max acc (Float.abs row.(ch))) 0. p.amps

let clip ~limits p =
  let lim = Array.map limits p.labels in
  let amps =
    Array.map
      (fun row ->
        Array.mapi
          (fun ch v -> Float.max (-.lim.(ch)) (Float.min lim.(ch) v))
          row)
      p.amps
  in
  { p with amps }

let pp ppf p =
  Format.fprintf ppf "@[<v>pulse: %d steps x %.3g ns = %.4g ns@," (n_steps p)
    p.dt (duration p);
  Array.iteri
    (fun ch label ->
      Format.fprintf ppf "%-8s" label;
      Array.iter
        (fun row -> Format.fprintf ppf " %+.4f" row.(ch))
        p.amps;
      Format.fprintf ppf "@,")
    p.labels;
  Format.fprintf ppf "@]"
