open Qnum

type channel = { label : string; operator : Cmat.t; limit : float }

let single ~n_qubits op q = Cmat.embed ~n_qubits ~targets:[ q ] op

let pauli_pair ~n_qubits sigma a b =
  Cmat.embed ~n_qubits ~targets:[ a; b ] (Cmat.kron sigma sigma)

let xy_exchange ~n_qubits a b =
  Cmat.add
    (pauli_pair ~n_qubits Qgate.Unitary.pauli_x a b)
    (pauli_pair ~n_qubits Qgate.Unitary.pauli_y a b)

let exchange ~interaction ~n_qubits a b =
  match interaction with
  | Device.Xy -> xy_exchange ~n_qubits a b
  | Device.Zz -> pauli_pair ~n_qubits Qgate.Unitary.pauli_z a b
  | Device.Heisenberg ->
    Cmat.add (xy_exchange ~n_qubits a b)
      (pauli_pair ~n_qubits Qgate.Unitary.pauli_z a b)

let line_couplings n = List.init (max 0 (n - 1)) (fun k -> (k, k + 1))

let channels ~device ~n_qubits ~couplings =
  if n_qubits <= 0 then invalid_arg "Hamiltonian.channels: no qubits";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (a, b) ->
      if a < 0 || b < 0 || a >= n_qubits || b >= n_qubits || a = b then
        invalid_arg "Hamiltonian.channels: bad coupling";
      let key = (min a b, max a b) in
      if Hashtbl.mem seen key then
        invalid_arg "Hamiltonian.channels: repeated coupling";
      Hashtbl.add seen key ())
    couplings;
  let drives =
    List.concat_map
      (fun q ->
        [ { label = Printf.sprintf "x%d" q;
            operator = single ~n_qubits Qgate.Unitary.pauli_x q;
            limit = device.Device.mu1 };
          { label = Printf.sprintf "y%d" q;
            operator = single ~n_qubits Qgate.Unitary.pauli_y q;
            limit = device.Device.mu1 } ])
      (List.init n_qubits (fun q -> q))
  in
  let prefix =
    match device.Device.interaction with
    | Device.Xy -> "xy"
    | Device.Zz -> "zz"
    | Device.Heisenberg -> "hei"
  in
  let exchanges =
    List.map
      (fun (a, b) ->
        { label = Printf.sprintf "%s%d-%d" prefix a b;
          operator = exchange ~interaction:device.Device.interaction ~n_qubits a b;
          limit = device.Device.mu2 })
      couplings
  in
  drives @ exchanges

let total chans amps =
  let chans = Array.of_list chans in
  if Array.length chans = 0 then invalid_arg "Hamiltonian.total: no channels";
  if Array.length amps <> Array.length chans then
    invalid_arg "Hamiltonian.total: amplitude count mismatch";
  let dim = Cmat.rows chans.(0).operator in
  let acc = ref (Cmat.zeros dim dim) in
  Array.iteri
    (fun k ch ->
      if amps.(k) <> 0. then
        acc := Cmat.add !acc (Cmat.scale_real amps.(k) ch.operator))
    chans;
  !acc
