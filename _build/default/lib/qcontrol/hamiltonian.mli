(** Control Hamiltonians for the XY superconducting architecture.

    An n-qubit aggregate is driven by X and Y drives on each qubit and
    the device's exchange coupling on each coupled pair — the channels shown
    in the paper's Fig. 4(c,d) (µx, µy per qubit, µxx+yy per pair). There
    is no drift term: the couplings themselves are tunable controls, as in
    the paper's gmon-style model. *)

type channel = {
  label : string;
  operator : Qnum.Cmat.t;  (** Hermitian generator on the 2ⁿ space. *)
  limit : float;  (** amplitude bound, GHz *)
}

val channels :
  device:Device.t -> n_qubits:int -> couplings:(int * int) list -> channel list
(** One X and one Y drive per qubit (limit µ₁) and one XY exchange term per
    listed pair (limit µ₂). Raises [Invalid_argument] on out-of-range or
    repeated pairs. *)

val line_couplings : int -> (int * int) list
(** Nearest-neighbor pairs (0,1), (1,2), … — aggregates are mapped onto
    connected subsets of the device, which we model as a line. *)

val total :
  channel list -> float array -> Qnum.Cmat.t
(** [total chans amps] is Σ amps.(k)·chans.(k).operator. *)

val exchange :
  interaction:Device.interaction -> n_qubits:int -> int -> int -> Qnum.Cmat.t
(** The device coupling operator on a pair: XX+YY (Xy), ZZ (Zz) or
    XX+YY+ZZ (Heisenberg). *)

val xy_exchange : n_qubits:int -> int -> int -> Qnum.Cmat.t
(** The XᵢXⱼ + YᵢYⱼ operator on the full space: at amplitude µ for time t
    it advances the Weyl coordinates by (µt, µt, 0), so a full iSWAP takes
    π/(4µ₂) ≈ 39.3 ns at the default limit. *)
