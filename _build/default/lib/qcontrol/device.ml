type interaction = Xy | Zz | Heisenberg

type t = { interaction : interaction; mu2 : float; mu1 : float }

let default = { interaction = Xy; mu2 = 0.02; mu1 = 0.1 }

let make ?(interaction = Xy) ~mu2 ~mu1 () =
  if mu2 <= 0. || mu1 <= 0. then invalid_arg "Device.make: non-positive limit";
  { interaction; mu2; mu1 }

let with_interaction interaction d = { d with interaction }

let interaction_name = function
  | Xy -> "XY (transmon, iSWAP-native)"
  | Zz -> "ZZ (flux/NMR, CPhase-native)"
  | Heisenberg -> "Heisenberg (quantum dot, sqrt-SWAP-native)"

let geodesic_angle theta =
  let tau = 2. *. Float.pi in
  let t = Float.rem (Float.abs theta) tau in
  Float.min t (tau -. t)

let one_qubit_rotation_time d theta = geodesic_angle theta /. (2. *. d.mu1)
let half_layer_time d = Float.pi /. 2. /. (2. *. d.mu1)
