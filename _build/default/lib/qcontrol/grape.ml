open Qnum

type problem = {
  n_qubits : int;
  couplings : (int * int) list;
  target : Cmat.t;
  duration : float;
  n_steps : int;
  device : Device.t;
}

type result = {
  pulse : Pulse.t;
  fidelity : float;
  iterations : int;
  converged : bool;
}

let channels_of p =
  Hamiltonian.channels ~device:p.device ~n_qubits:p.n_qubits
    ~couplings:p.couplings

let propagator_of_pulse ~device ~n_qubits ~couplings pulse =
  let chans = Hamiltonian.channels ~device ~n_qubits ~couplings in
  let dim = 1 lsl n_qubits in
  Array.fold_left
    (fun acc amps ->
      let h = Hamiltonian.total chans amps in
      Cmat.mul (Expm.propagator h pulse.Pulse.dt) acc)
    (Cmat.identity dim) pulse.Pulse.amps

let optimize ?(seed = 1) ?(max_iterations = 2000) ?(target_fidelity = 0.999)
    ?(learning_rate = 5e-3) p =
  if p.n_steps <= 0 then invalid_arg "Grape.optimize: no time steps";
  if p.duration <= 0. then invalid_arg "Grape.optimize: no duration";
  let chans = Array.of_list (channels_of p) in
  let nc = Array.length chans in
  let ns = p.n_steps in
  let dt = p.duration /. float_of_int ns in
  let dim = 1 lsl p.n_qubits in
  if Cmat.rows p.target <> dim then
    invalid_arg "Grape.optimize: target dimension mismatch";
  let rng = Qgraph.Rand.create seed in
  (* start from small random amplitudes to break symmetry *)
  let amps =
    Array.init ns (fun _ ->
        Array.init nc (fun ch ->
            let lim = chans.(ch).Hamiltonian.limit in
            Qgraph.Rand.float rng lim -. (lim /. 2.)))
  in
  (* Adam state *)
  let m = Array.make_matrix ns nc 0. and v = Array.make_matrix ns nc 0. in
  let beta1 = 0.9 and beta2 = 0.999 and eps = 1e-8 in
  let clip step =
    Array.iteri
      (fun ch lim ->
        amps.(step).(ch) <- Float.max (-.lim) (Float.min lim amps.(step).(ch)))
      (Array.map (fun c -> c.Hamiltonian.limit) chans)
  in
  let props = Array.make ns (Cmat.identity dim) in
  let forward = Array.make (ns + 1) (Cmat.identity dim) in
  let backward = Array.make (ns + 1) (Cmat.identity dim) in
  let best_fid = ref 0. and best_amps = ref (Array.map Array.copy amps) in
  let iterations = ref 0 in
  let converged = ref false in
  let d = float_of_int dim in
  (try
     for iter = 1 to max_iterations do
       iterations := iter;
       for j = 0 to ns - 1 do
         props.(j) <- Expm.propagator (Hamiltonian.total (Array.to_list chans) amps.(j)) dt
       done;
       (* forward.(j) = U_{j-1}...U_0 ; backward.(j) = U_{N-1}...U_j *)
       for j = 0 to ns - 1 do
         forward.(j + 1) <- Cmat.mul props.(j) forward.(j)
       done;
       backward.(ns) <- Cmat.identity dim;
       for j = ns - 1 downto 0 do
         backward.(j) <- Cmat.mul backward.(j + 1) props.(j)
       done;
       let u = forward.(ns) in
       let g = Cx.scale (1. /. d) (Cmat.trace (Cmat.mul (Cmat.dagger p.target) u)) in
       let fid = Cx.norm2 g in
       if fid > !best_fid then begin
         best_fid := fid;
         best_amps := Array.map Array.copy amps
       end;
       if fid >= target_fidelity then begin
         converged := true;
         raise Exit
       end;
       (* gradient of |g|^2 wrt u_k(j):
          dU = B_{j+1} (-i dt H_k) U_j F_j, dg = tr(T† dU)/d,
          d|g|² = 2 Re(conj(g)·dg) *)
       let tdag = Cmat.dagger p.target in
       for j = 0 to ns - 1 do
         let left = Cmat.mul tdag backward.(j + 1) in
         let right = Cmat.mul props.(j) forward.(j) in
         for ch = 0 to nc - 1 do
           let hk = chans.(ch).Hamiltonian.operator in
           let dU = Cmat.mul left (Cmat.mul hk right) in
           let dg =
             Cx.mul (Cx.make 0. (-.dt /. d)) (Cmat.trace dU)
           in
           let grad = 2. *. ((Cx.re g *. Cx.re dg) +. (Cx.im g *. Cx.im dg)) in
           (* Adam ascent on fidelity *)
           m.(j).(ch) <- (beta1 *. m.(j).(ch)) +. ((1. -. beta1) *. grad);
           v.(j).(ch) <- (beta2 *. v.(j).(ch)) +. ((1. -. beta2) *. grad *. grad);
           let mh = m.(j).(ch) /. (1. -. Float.pow beta1 (float_of_int iter)) in
           let vh = v.(j).(ch) /. (1. -. Float.pow beta2 (float_of_int iter)) in
           let lim = chans.(ch).Hamiltonian.limit in
           amps.(j).(ch) <-
             amps.(j).(ch) +. (learning_rate *. lim *. mh /. (Float.sqrt vh +. eps))
         done;
         clip j
       done
     done
   with Exit -> ());
  let labels = Array.map (fun c -> c.Hamiltonian.label) chans in
  let pulse = Pulse.make ~dt ~labels !best_amps in
  { pulse; fidelity = !best_fid; iterations = !iterations; converged = !converged }

let minimum_duration_search ?(seed = 1) ?(fidelity = 0.99) ?(resolution = 2.)
    p =
  let attempt duration =
    let steps =
      max 8 (int_of_float (Float.ceil (duration /. (p.duration /. float_of_int p.n_steps))))
    in
    optimize ~seed ~target_fidelity:fidelity
      { p with duration; n_steps = steps }
  in
  let hi = ref p.duration and hi_result = ref (attempt p.duration) in
  if not !hi_result.converged then (!hi, !hi_result)
  else begin
    let lo = ref 0. in
    while !hi -. !lo > resolution do
      let mid = (!lo +. !hi) /. 2. in
      let r = attempt mid in
      if r.converged then begin
        hi := mid;
        hi_result := r
      end
      else lo := mid
    done;
    (!hi, !hi_result)
  end
