(** Device parameters for the physical architectures of the paper's
    Appendix A.

    The paper's experimental setup (§5.1) is the superconducting XY
    (iSWAP-native) interaction with two-qubit control-field limit
    µ₂ = 0.02 GHz and single-qubit control fields limited to 5·µ₂; the
    appendix also lists ZZ-interaction platforms (Josephson flux qubits,
    NMR — CPhase-native) and Heisenberg-interaction platforms (quantum
    dots — √SWAP-native, where "the SWAP operation is directly
    supported"). Times are in nanoseconds throughout (1 GHz⁻¹ = 1 ns). *)

type interaction =
  | Xy  (** XX+YY coupling — transmons; iSWAP native *)
  | Zz  (** ZZ coupling — flux qubits, NMR; CPhase native *)
  | Heisenberg  (** XX+YY+ZZ coupling — quantum dots; √SWAP native *)

type t = {
  interaction : interaction;
  mu2 : float;  (** 2-qubit coupling amplitude limit, GHz. *)
  mu1 : float;  (** 1-qubit X/Y drive amplitude limit, GHz. *)
}

val default : t
(** XY with µ₂ = 0.02 GHz, µ₁ = 0.1 GHz — the paper's setting. *)

val make : ?interaction:interaction -> mu2:float -> mu1:float -> unit -> t
(** Raises [Invalid_argument] on non-positive limits. *)

val with_interaction : interaction -> t -> t
val interaction_name : interaction -> string

val one_qubit_rotation_time : t -> float -> float
(** [one_qubit_rotation_time d theta] is the minimal duration of a Bloch
    rotation by geodesic angle θ_eff ∈ [0, π] at full drive:
    θ_eff / (2µ₁). The angle is reduced modulo 2π and reflected. *)

val half_layer_time : t -> float
(** Duration of a π/2 single-qubit layer — the unit used to account for
    the local layers flanking a two-qubit interaction. *)
