(** GRAPE — GRadient Ascent Pulse Engineering (paper §2.5, Fig. 3).

    Optimizes piecewise-constant control amplitudes so that the
    time-ordered product of step propagators matches a target unitary.
    The loss is infidelity 1 - |tr(U†_target·U)|²/d²; gradients are the
    standard first-order GRAPE derivatives ∂U/∂u_k(j) ≈ -i·dt·H_k
    sandwiched between the forward and backward partial products, and the
    update is Adam with amplitude clipping at the device limits.

    The paper runs this on GPUs for up to 10 qubits; here it is exercised
    on the ≤3-qubit instructions used for validation and pulse-shape
    output (DESIGN.md substitution table). *)

type problem = {
  n_qubits : int;
  couplings : (int * int) list;  (** driven pairs, e.g. a line *)
  target : Qnum.Cmat.t;  (** 2ⁿ×2ⁿ target unitary *)
  duration : float;  (** total pulse time, ns *)
  n_steps : int;  (** time slices *)
  device : Device.t;
}

type result = {
  pulse : Pulse.t;
  fidelity : float;
  iterations : int;
  converged : bool;  (** reached [target_fidelity] *)
}

val optimize :
  ?seed:int ->
  ?max_iterations:int ->
  ?target_fidelity:float ->
  ?learning_rate:float ->
  problem ->
  result
(** Defaults: seed 1, 2000 iterations, fidelity 0.999, learning rate 5e-3
    (in units of the channel limit). Deterministic for a fixed seed. *)

val propagator_of_pulse :
  device:Device.t -> n_qubits:int -> couplings:(int * int) list -> Pulse.t ->
  Qnum.Cmat.t
(** Exact time-ordered product of the per-slice propagators — shared with
    the verification path ({!Qsim}-level checks compare this against the
    instruction's target unitary). *)

val minimum_duration_search :
  ?seed:int ->
  ?fidelity:float ->
  ?resolution:float ->
  problem ->
  float * result
(** Binary-search the shortest duration (to within [resolution], default
    2 ns) at which GRAPE still reaches [fidelity] (default 0.99); the
    paper's notion of an instruction's optimized pulse time. Returns the
    duration and the result at that duration. The [duration] field of the
    problem is used as the upper bracket. *)
