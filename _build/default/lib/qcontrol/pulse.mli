(** Piecewise-constant control-pulse sequences.

    A pulse sequence fixes, for every control channel, an amplitude per
    time slice of width [dt] — the representation GRAPE optimizes and the
    pulse simulator integrates (paper Fig. 3). *)

type t = {
  dt : float;  (** slice duration, ns *)
  labels : string array;  (** channel names, e.g. "x0", "y1", "xy0-1" *)
  amps : float array array;  (** [amps.(step).(channel)] in GHz *)
}

val make : dt:float -> labels:string array -> float array array -> t
(** Raises [Invalid_argument] on non-positive [dt] or ragged rows. *)

val constant : dt:float -> labels:string array -> steps:int -> float array -> t
(** All slices equal to the given per-channel amplitudes. *)

val n_steps : t -> int
val n_channels : t -> int
val duration : t -> float

val concat : t -> t -> t
(** Sequential composition. Raises [Invalid_argument] when [dt] or channel
    labels differ. *)

val max_amplitude : t -> string -> float
(** Largest |amplitude| on the named channel. Raises [Not_found] on an
    unknown label. *)

val clip : limits:(string -> float) -> t -> t
(** Clamp every amplitude into [-limit, limit] for its channel. *)

val pp : Format.formatter -> t -> unit
(** Compact textual rendering (one line per channel, amplitudes in GHz) —
    the textual analogue of the paper's Fig. 4(c,d) pulse plots. *)
