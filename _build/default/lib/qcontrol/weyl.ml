open Qnum

type coords = { c1 : float; c2 : float; c3 : float }

let quarter_pi = Float.pi /. 4.
let half_pi = Float.pi /. 2.

let cnot_coords = { c1 = quarter_pi; c2 = 0.; c3 = 0. }
let iswap_coords = { c1 = quarter_pi; c2 = quarter_pi; c3 = 0. }
let swap_coords = { c1 = quarter_pi; c2 = quarter_pi; c3 = quarter_pi }

(* the magic (Bell) basis, in which local unitaries are real orthogonal and
   canonical gates are diagonal *)
let magic =
  let s = 1. /. Float.sqrt 2. in
  let c re im = Cx.make (s *. re) (s *. im) in
  Cmat.of_lists
    [ [ c 1. 0.; Cx.zero; Cx.zero; c 0. 1. ];
      [ Cx.zero; c 0. 1.; c 1. 0.; Cx.zero ];
      [ Cx.zero; c 0. 1.; c (-1.) 0.; Cx.zero ];
      [ c 1. 0.; Cx.zero; Cx.zero; c 0. (-1.) ] ]

let canonicalize (a, b, cc) =
  (* multiple eigenvalues (identity-like or SWAP-like gates) are computed
     with ~1e-4 accuracy by any root finder; snapping to the chamber
     corners costs < 0.03 ns of model time and keeps anchors exact *)
  let snap v =
    if Float.abs v < 5e-4 then 0.
    else if Float.abs (v -. quarter_pi) < 5e-4 then quarter_pi
    else v
  in
  let fold v =
    let r = Float.rem v half_pi in
    let r = if r < 0. then r +. half_pi else r in
    snap (if r > quarter_pi then half_pi -. r else r)
  in
  match List.sort (fun x y -> compare y x) [ fold a; fold b; fold cc ] with
  | [ c1; c2; c3 ] -> { c1; c2; c3 }
  | _ -> assert false

let coordinates u =
  if Cmat.rows u <> 4 || Cmat.cols u <> 4 then
    invalid_arg "Weyl.coordinates: expected a 4x4 matrix";
  if not (Cmat.is_unitary ~eps:1e-7 u) then
    invalid_arg "Weyl.coordinates: matrix is not unitary";
  (* normalize into SU(4) *)
  let d = Cmat.det u in
  let root = Cx.pow d (Cx.of_float (-0.25)) in
  let su = Cmat.scale root u in
  let m = Cmat.mul (Cmat.dagger magic) (Cmat.mul su magic) in
  let t = Cmat.mul m (Cmat.transpose m) in
  let eigs = Eig.eigenvalues t in
  (* eigenphases of M·Mᵀ are 2φ_k; any consistent assignment of
     (φ_a+φ_c)/2-style combinations lands in the symmetry orbit of the true
     coordinates, which canonicalization quotients out *)
  let phi = Array.map (fun lam -> Cx.arg lam /. 2.) eigs in
  canonicalize
    ( (phi.(0) +. phi.(2)) /. 2.,
      (phi.(1) +. phi.(2)) /. 2.,
      (phi.(0) +. phi.(1)) /. 2. )

let canonical_gate { c1; c2; c3 } =
  let xx = Cmat.kron Qgate.Unitary.pauli_x Qgate.Unitary.pauli_x in
  let yy = Cmat.kron Qgate.Unitary.pauli_y Qgate.Unitary.pauli_y in
  let zz = Cmat.kron Qgate.Unitary.pauli_z Qgate.Unitary.pauli_z in
  let h =
    Cmat.add
      (Cmat.scale_real c1 xx)
      (Cmat.add (Cmat.scale_real c2 yy) (Cmat.scale_real c3 zz))
  in
  Expm.expm (Cmat.scale Cx.i h)

(* time-optimal canonical-class synthesis under each Appendix-A coupling
   (segment constructions and matching lower bounds in DESIGN.md): an XY
   segment advances (a, a, 0), a ZZ segment (a, 0, 0), a Heisenberg
   segment (a, a, a); local rotations permute and pairwise-negate
   coordinates between segments *)
let interaction_time device { c1; c2; c3 } =
  let mu = device.Device.mu2 in
  match device.Device.interaction with
  | Device.Xy -> Float.max ((c1 +. c2 +. c3) /. (2. *. mu)) (c1 /. mu)
  | Device.Zz -> (c1 +. c2 +. c3) /. mu
  | Device.Heisenberg -> c1 /. mu
