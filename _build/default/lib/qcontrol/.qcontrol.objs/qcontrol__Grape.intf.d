lib/qcontrol/grape.mli: Device Pulse Qnum
