lib/qcontrol/pulse.mli: Format
