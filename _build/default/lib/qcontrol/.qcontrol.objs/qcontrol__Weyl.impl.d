lib/qcontrol/weyl.ml: Array Cmat Cx Device Eig Expm Float List Qgate Qnum
