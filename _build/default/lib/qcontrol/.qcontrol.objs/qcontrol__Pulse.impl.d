lib/qcontrol/pulse.ml: Array Float Format
