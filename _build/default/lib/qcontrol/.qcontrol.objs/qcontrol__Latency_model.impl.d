lib/qcontrol/latency_model.ml: Cmat Cx Device Float Hashtbl List Option Qgate Qnum Weyl
