lib/qcontrol/hamiltonian.mli: Device Qnum
