lib/qcontrol/grape.ml: Array Cmat Cx Device Expm Float Hamiltonian Pulse Qgraph Qnum
