lib/qcontrol/device.mli:
