lib/qcontrol/weyl.mli: Device Qnum
