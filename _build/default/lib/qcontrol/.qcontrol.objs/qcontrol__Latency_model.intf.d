lib/qcontrol/latency_model.mli: Device Qgate Qnum
