lib/qcontrol/device.ml: Float
