lib/qcontrol/hamiltonian.ml: Array Cmat Device Hashtbl List Printf Qgate Qnum
