lib/qopt/nelder_mead.mli:
