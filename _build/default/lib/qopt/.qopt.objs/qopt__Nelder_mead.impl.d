lib/qopt/nelder_mead.ml: Array Float
