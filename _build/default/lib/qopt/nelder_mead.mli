(** Derivative-free minimization (Nelder–Mead simplex).

    The classical-optimizer half of the paper's target workloads: QAOA and
    VQE are hybrid loops in which a classical optimizer tunes circuit
    angles against a measured expectation value (paper §1, [8, 36, 44]).
    Nelder–Mead is the standard gradient-free choice when the objective
    comes from sampling a quantum device. *)

type result = {
  x : float array;  (** best point found *)
  value : float;
  iterations : int;
  evaluations : int;
  converged : bool;  (** simplex spread fell below [tolerance] *)
}

val minimize :
  ?max_iterations:int ->
  ?tolerance:float ->
  ?step:float ->
  f:(float array -> float) ->
  float array ->
  result
(** [minimize ~f x0] runs the standard (α=1, γ=2, ρ=1/2, σ=1/2) simplex
    from [x0], with the initial simplex offset by [step] (default 0.5)
    per coordinate. Defaults: 500 iterations, tolerance 1e-8 on the
    value spread. Deterministic. Raises [Invalid_argument] on an empty
    start point. *)

val minimize_scalar :
  ?max_iterations:int ->
  ?tolerance:float ->
  f:(float -> float) ->
  float ->
  float ->
  float * float
(** [minimize_scalar ~f lo hi]: golden-section search for a unimodal 1-D
    objective on [lo, hi]; returns (argmin, min). *)
