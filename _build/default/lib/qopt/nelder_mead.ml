type result = {
  x : float array;
  value : float;
  iterations : int;
  evaluations : int;
  converged : bool;
}

let minimize ?(max_iterations = 500) ?(tolerance = 1e-8) ?(step = 0.5) ~f x0 =
  let n = Array.length x0 in
  if n = 0 then invalid_arg "Nelder_mead.minimize: empty start point";
  let evaluations = ref 0 in
  let eval x =
    incr evaluations;
    f x
  in
  (* simplex of n+1 vertices, kept sorted by value *)
  let vertices =
    Array.init (n + 1) (fun k ->
        let x = Array.copy x0 in
        if k > 0 then x.(k - 1) <- x.(k - 1) +. step;
        (x, 0.))
  in
  Array.iteri (fun k (x, _) -> vertices.(k) <- (x, eval x)) vertices;
  let sort () =
    Array.sort (fun (_, a) (_, b) -> compare a b) vertices
  in
  sort ();
  let centroid () =
    (* of all but the worst vertex *)
    let c = Array.make n 0. in
    for k = 0 to n - 1 do
      let x, _ = vertices.(k) in
      Array.iteri (fun i v -> c.(i) <- c.(i) +. (v /. float_of_int n)) x
    done;
    c
  in
  let combine a wa b wb = Array.init n (fun i -> (wa *. a.(i)) +. (wb *. b.(i))) in
  let iterations = ref 0 in
  let converged = ref false in
  (try
     for iter = 1 to max_iterations do
       iterations := iter;
       let _, best = vertices.(0) and _, worst = vertices.(n) in
       if Float.abs (worst -. best) <= tolerance *. (1. +. Float.abs best)
       then begin
         converged := true;
         raise Exit
       end;
       let c = centroid () in
       let xw, fw = vertices.(n) in
       let _, f_second_worst = vertices.(n - 1) in
       let f_best = snd vertices.(0) in
       (* reflection *)
       let xr = combine c 2. xw (-1.) in
       let fr = eval xr in
       if fr < f_best then begin
         (* expansion *)
         let xe = combine c 3. xw (-2.) in
         let fe = eval xe in
         if fe < fr then vertices.(n) <- (xe, fe) else vertices.(n) <- (xr, fr)
       end
       else if fr < f_second_worst then vertices.(n) <- (xr, fr)
       else begin
         (* contraction (outside if the reflection improved on the worst) *)
         let xc, fc =
           if fr < fw then begin
             let x = combine c 1.5 xw (-0.5) in
             (x, eval x)
           end
           else begin
             let x = combine c 0.5 xw 0.5 in
             (x, eval x)
           end
         in
         if fc < Float.min fr fw then vertices.(n) <- (xc, fc)
         else begin
           (* shrink towards the best vertex *)
           let xb, _ = vertices.(0) in
           for k = 1 to n do
             let xk, _ = vertices.(k) in
             let x = combine xb 0.5 xk 0.5 in
             vertices.(k) <- (x, eval x)
           done
         end
       end;
       sort ()
     done
   with Exit -> ());
  let x, value = vertices.(0) in
  { x = Array.copy x;
    value;
    iterations = !iterations;
    evaluations = !evaluations;
    converged = !converged }

let minimize_scalar ?(max_iterations = 200) ?(tolerance = 1e-9) ~f lo hi =
  if hi <= lo then invalid_arg "Nelder_mead.minimize_scalar: empty interval";
  let phi = (Float.sqrt 5. -. 1.) /. 2. in
  let rec go a b x1 x2 f1 f2 remaining =
    if remaining = 0 || b -. a <= tolerance then begin
      let x = (a +. b) /. 2. in
      (x, f x)
    end
    else if f1 < f2 then begin
      let b = x2 and x2 = x1 and f2 = f1 in
      let x1 = b -. (phi *. (b -. a)) in
      go a b x1 x2 (f x1) f2 (remaining - 1)
    end
    else begin
      let a = x1 and x1 = x2 and f1 = f2 in
      let x2 = a +. (phi *. (b -. a)) in
      go a b x1 x2 f1 (f x2) (remaining - 1)
    end
  in
  let x1 = hi -. (phi *. (hi -. lo)) and x2 = lo +. (phi *. (hi -. lo)) in
  go lo hi x1 x2 (f x1) (f x2) max_iterations
