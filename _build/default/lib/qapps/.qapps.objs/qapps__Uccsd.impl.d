lib/qapps/uccsd.ml: Array Fermion List Qgate Qgraph
