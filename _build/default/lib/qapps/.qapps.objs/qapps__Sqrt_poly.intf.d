lib/qapps/sqrt_poly.mli: Qarith Qgate
