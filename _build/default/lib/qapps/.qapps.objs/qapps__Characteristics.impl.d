lib/qapps/characteristics.ml: Format List Qgate Qgdg Qgraph Qmap
