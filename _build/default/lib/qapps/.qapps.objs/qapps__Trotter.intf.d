lib/qapps/trotter.mli: Qgate Qnum
