lib/qapps/fermion.ml: Array Float Hashtbl List Qgate Qnum
