lib/qapps/suite.mli: Qgate
