lib/qapps/qft.mli: Qgate Qnum
