lib/qapps/characteristics.mli: Format Qgate Qmap
