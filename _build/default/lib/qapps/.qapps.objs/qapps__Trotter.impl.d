lib/qapps/trotter.ml: List Qgate Qnum
