lib/qapps/graphs.mli: Qgraph
