lib/qapps/uccsd.mli: Fermion Qgate
