lib/qapps/qft.ml: Float List Qgate Qnum
