lib/qapps/ising.mli: Qgate
