lib/qapps/fermion.mli: Qgate Qnum
