lib/qapps/qaoa.ml: Array List Qgate Qgraph
