lib/qapps/ising.ml: List Qgate String
