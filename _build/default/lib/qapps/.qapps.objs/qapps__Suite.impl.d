lib/qapps/suite.ml: Graphs Ising Lazy List Qaoa Qft Qgate Sqrt_poly Uccsd
