lib/qapps/sqrt_poly.ml: Array List Qarith Qgate Qsim
