lib/qapps/qaoa.mli: Qgate Qgraph
