lib/qapps/graphs.ml: Array List Qgraph
