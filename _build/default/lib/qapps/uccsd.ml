module Pauli = Qgate.Pauli

type excitation =
  | Single of int * int
  | Double of int * int * int * int

let excitations n =
  if n < 4 || n mod 2 <> 0 then
    invalid_arg "Uccsd.excitations: need an even count of at least 4";
  let occ = List.init (n / 2) (fun k -> k) in
  let virt = List.init (n / 2) (fun k -> (n / 2) + k) in
  let singles =
    List.concat_map (fun i -> List.map (fun a -> Single (i, a)) virt) occ
  in
  let pairs l =
    List.concat_map
      (fun i -> List.filter_map (fun j -> if i < j then Some (i, j) else None) l)
      l
  in
  let doubles =
    List.concat_map
      (fun (i, j) -> List.map (fun (a, b) -> Double (i, j, a, b)) (pairs virt))
      (pairs occ)
  in
  singles @ doubles

(* a Pauli string with given letters at the listed sites and Z on the
   Jordan–Wigner chains strictly between paired sites *)
let string_with ~n ~letters ~chains =
  let ops = Array.make n Pauli.Pi in
  List.iter
    (fun (lo, hi) ->
      for q = lo + 1 to hi - 1 do
        ops.(q) <- Pauli.Pz
      done)
    chains;
  List.iter (fun (site, letter) -> ops.(site) <- letter) letters;
  Pauli.make 1.0 ops

let strings_of_excitation ~n ~theta = function
  | Single (i, a) ->
    let mk la lb = string_with ~n ~letters:[ (i, la); (a, lb) ] ~chains:[ (i, a) ] in
    [ (theta /. 2., mk Pauli.Px Pauli.Py); (-.theta /. 2., mk Pauli.Py Pauli.Px) ]
  | Double (i, j, a, b) ->
    let mk l1 l2 l3 l4 =
      string_with ~n
        ~letters:[ (i, l1); (j, l2); (a, l3); (b, l4) ]
        ~chains:[ (i, j); (a, b) ]
    in
    let x = Pauli.Px and y = Pauli.Py in
    let plus = [ mk x x x y; mk x x y x; mk x y x x; mk y x x x ] in
    let minus = [ mk x y y y; mk y x y y; mk y y x y; mk y y y x ] in
    List.map (fun s -> (theta /. 8., s)) plus
    @ List.map (fun s -> (-.theta /. 8., s)) minus

let circuit ?(seed = 7) ?(encoding = Fermion.Jordan_wigner) n =
  let rng = Qgraph.Rand.create seed in
  let rotations theta = function
    | Single (i, a) ->
      Fermion.single_excitation_rotations encoding ~n ~theta ~i ~a
    | Double (i, j, a, b) ->
      Fermion.double_excitation_rotations encoding ~n ~theta ~i ~j ~a ~b
  in
  let gates =
    List.concat_map
      (fun exc ->
        let theta = Qgraph.Rand.float rng 2.0 -. 1.0 in
        List.concat_map
          (fun (angle, s) -> Pauli.rotation_circuit ~theta:angle s)
          (rotations theta exc))
      (excitations n)
  in
  Qgate.Circuit.make n gates
