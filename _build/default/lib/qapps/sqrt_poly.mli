(** Grover square-root search (paper Table 3, "square root-nK").

    Finds x with x² = N by Grover search over an n-bit input register: the
    oracle squares x reversibly ({!Qarith.Square}), compares the
    accumulator against N with a multi-controlled phase kick, and
    uncomputes; the diffusion operator inverts about the mean. The
    resulting circuits are deep, serial, spatially local and essentially
    non-commutative — the profile the paper reports for this family. *)

type t = {
  circuit : Qgate.Circuit.t;  (** logical circuit, Toffolis not yet lowered *)
  layout : Qarith.Square.layout;
  n : int;  (** input width *)
  target : int;  (** N, the value whose root is sought *)
  iterations : int;
}

val build : ?iterations:int -> n:int -> target:int -> unit -> t
(** Raises [Invalid_argument] unless 0 ≤ target < 2^2n and n ≥ 2.
    Default: one Grover iteration. *)

val oracle : Qarith.Square.layout -> target:int -> Qgate.Gate.t list
(** The phase oracle alone (flag must already be in |−⟩). *)

val diffusion : Qarith.Square.layout -> Qgate.Gate.t list

val success_probability : t -> float array
(** Probability of each x ∈ [0, 2ⁿ) on measuring the input register after
    the circuit (state-vector simulation; practical for n ≤ 3). *)
