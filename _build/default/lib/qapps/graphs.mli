(** MAXCUT instance families (paper Table 3).

    Three graph families with decreasing spatial locality: a line, a
    random 4-regular graph, and a cluster graph (complete clusters joined
    in a ring). All generators are deterministic given a seed. *)

val line : int -> Qgraph.Graph.t

val regular4 : seed:int -> int -> Qgraph.Graph.t
(** Random connected 4-regular simple graph: a circulant (±1, ±2) seed
    graph randomized by degree-preserving double-edge swaps.
    Requires n ≥ 5. *)

val cluster : seed:int -> clusters:int -> size:int -> Qgraph.Graph.t
(** [clusters] complete graphs of [size] vertices each, consecutive
    clusters joined by one edge (ring). Requires size ≥ 2, clusters ≥ 2. *)

val max_cut_brute_force : Qgraph.Graph.t -> float * bool array
(** Exact MAXCUT by enumeration (n ≤ 24): value and one optimal side
    assignment. Used by tests and the QAOA example. *)
