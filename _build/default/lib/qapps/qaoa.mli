(** QAOA circuits for MAXCUT (paper §3.1, Fig. 4).

    One QAOA level applies, after the uniform-superposition layer, a
    CNOT–Rz(γ)–CNOT phase-separation block per graph edge (the diagonal
    ZZ structure the compiler's commutativity detection targets) followed
    by an Rx(2β) mixing layer. Angle defaults match the paper's example
    (γ = 5.67, β = 1.26). *)

val default_gamma : float
val default_beta : float

val circuit :
  ?gamma:float -> ?beta:float -> ?levels:int -> Qgraph.Graph.t ->
  Qgate.Circuit.t
(** QAOA over the graph's vertex register. Edge weights scale γ. *)

val triangle_example : unit -> Qgate.Circuit.t
(** The 3-qubit MAXCUT-on-a-triangle circuit of Fig. 4(a) (before
    mapping; the SWAP appears after routing on a line). *)

val cut_expectation : Qgraph.Graph.t -> (int -> float) -> float
(** [cut_expectation g prob] folds basis-state probabilities into the
    expected cut value: Σ_z prob(z)·cut(z). The callback receives basis
    indices with qubit 0 as the most significant bit. *)
