(** The benchmark suite of Table 3.

    Ten named instances across five applications. Every instance is
    deterministic. The paper's qubit counts are recorded alongside (ours
    differ for the square-root family, whose reversible-arithmetic
    construction is leaner than ScaffCC's — see EXPERIMENTS.md). *)

type benchmark = {
  name : string;
  application : string;
  purpose : string;
  paper_qubits : int;
  circuit : Qgate.Circuit.t lazy_t;
}

val all : benchmark list
(** The ten Table 3 rows, in order. *)

val fig9 : benchmark list
(** The nine Figure 9 benchmarks (Table 3 minus the second Ising size's
    duplicate application — the paper's §5.3 speaks of 9 benchmarks; we
    drop Ising-60 from the geomean and report it separately). *)

val extended : benchmark list
(** Table 3 plus the QFT instances §6.1 discusses. *)

val find : string -> benchmark
(** Looks up in {!extended}. Raises [Not_found]. *)

val lowered : benchmark -> Qgate.Circuit.t
(** The instance's circuit lowered to the standard ISA (Toffoli-free). *)
