(** Quantum Fourier Transform circuits.

    §6.1 of the paper lists the QFT with square-root and UCCSD among the
    applications with little to no commutativity, where CLS has no effect
    and the gains come from aggregation. The standard construction uses a
    descending ladder of controlled phases — deep, serial and
    parameterized over exponentially small angles. *)

val circuit : ?approximation:int -> int -> Qgate.Circuit.t
(** [circuit n] is the textbook QFT on [n] qubits: per qubit a Hadamard
    followed by controlled phases CP(π/2^k) from the lower qubits, with
    the final qubit-reversal SWAP layer. [approximation] (default: no
    cutoff) drops rotations smaller than π/2^approximation — the standard
    approximate QFT. *)

val matrix : int -> Qnum.Cmat.t
(** The exact DFT unitary F with F[j,k] = ω^{jk}/√N, ω = e^{2πi/N}, for
    checking the circuit (small n). *)
