(** Trotter–Suzuki circuits for Hamiltonian simulation.

    Generalizes the Ising benchmark's construction: a Hamiltonian given
    as a sum of Pauli terms is compiled into first- or second-order
    product-formula circuits, every term becoming a basis-change +
    CNOT-ladder + Rz rotation — the diagonal chains the paper's
    aggregation pass targets. *)

type order = First | Second

val step_gates :
  ?order:order -> time:float -> Qgate.Pauli.t list -> Qgate.Gate.t list
(** One Trotter step evolving exp(-i·H·time) for H = Σ terms. First
    order: ∏ exp(-i·h·t). Second order (Strang): forward half-steps then
    backward half-steps, error O(t³) per step. *)

val circuit :
  ?order:order -> n:int -> time:float -> steps:int -> Qgate.Pauli.t list ->
  Qgate.Circuit.t
(** [steps] repetitions of [step_gates ~time:(time/steps)]. Raises
    [Invalid_argument] on non-positive [steps] or a term register other
    than [n]. *)

val exact : n:int -> time:float -> Qgate.Pauli.t list -> Qnum.Cmat.t
(** exp(-i·H·time) by dense exponentiation (small n — the test oracle). *)
