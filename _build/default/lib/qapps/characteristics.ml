type level = High | Medium | Low

type t = {
  qubits : int;
  gates : int;
  two_qubit_gates : int;
  depth : int;
  parallelism : float;
  parallelism_level : level;
  spatial_locality : float;
  spatial_locality_level : level;
  commutativity : float;
  commutativity_level : level;
}

let level_of value ~high ~medium =
  if value >= high then High else if value >= medium then Medium else Low

let max_sampled_pairs = 500

let commutativity_fraction circuit =
  (* measure on the diagonal-contracted GDG at the interaction-block
     scale: for each qubit, take the consecutive pairs of multi-qubit
     blocks and ask whether the commutation-group structure lets them
     reorder (same group on the qubit). This captures QAOA's freely
     reorderable ZZ terms (High), the Rx barriers between Ising Trotter
     layers (Medium), and the rigid chains of reversible logic (Low) —
     a raw pairwise-commutation count would be inflated by incidental
     T/CNOT coincidences. *)
  let g = Qgdg.Gdg.of_circuit ~latency:(fun _ -> 1.0) circuit in
  let _ =
    Qgdg.Diagonal.detect_and_contract
      ~latency:(fun gs -> float_of_int (List.length gs))
      g
  in
  let groups = Qgdg.Comm_group.build g in
  let total = ref 0 and free = ref 0 in
  (try
     for q = 0 to Qgdg.Gdg.n_qubits g - 1 do
       let interactions =
         List.filter (fun (i : Qgdg.Inst.t) -> Qgdg.Inst.width i >= 2)
           (Qgdg.Gdg.chain g q)
       in
       let rec walk = function
         | (a : Qgdg.Inst.t) :: (b :: _ as rest) ->
           if !total >= max_sampled_pairs then raise Exit;
           incr total;
           if
             Qgdg.Comm_group.same_group groups ~qubit:q a.Qgdg.Inst.id
               b.Qgdg.Inst.id
           then incr free;
           walk rest
         | [ _ ] | [] -> ()
       in
       walk interactions
     done
   with Exit -> ());
  if !total = 0 then 0. else float_of_int !free /. float_of_int !total

let spatial_locality_fraction ~topology circuit =
  let placement = Qmap.Placement.initial topology circuit in
  let interaction = Qgate.Circuit.interaction_graph circuit in
  let total = ref 0. and local = ref 0. in
  List.iter
    (fun (u, v, w) ->
      total := !total +. w;
      let su = Qmap.Placement.site_of placement u
      and sv = Qmap.Placement.site_of placement v in
      if Qmap.Topology.distance topology su sv = 1 then local := !local +. w)
    (Qgraph.Graph.edges interaction);
  if !total = 0. then 1. else !local /. !total

let analyze ?topology circuit =
  let qubits = Qgate.Circuit.n_qubits circuit in
  let topology =
    match topology with
    | Some t -> t
    | None -> Qmap.Topology.grid_for qubits
  in
  let gates = Qgate.Circuit.n_gates circuit in
  let depth = Qgate.Circuit.depth circuit in
  let parallelism =
    if depth = 0 || qubits = 0 then 0.
    else
      float_of_int gates /. float_of_int depth
      /. (float_of_int qubits /. 2.)
  in
  let spatial_locality = spatial_locality_fraction ~topology circuit in
  let commutativity = commutativity_fraction circuit in
  { qubits;
    gates;
    two_qubit_gates = Qgate.Circuit.two_qubit_count circuit;
    depth;
    parallelism;
    parallelism_level = level_of parallelism ~high:0.5 ~medium:0.2;
    spatial_locality;
    spatial_locality_level = level_of spatial_locality ~high:0.8 ~medium:0.5;
    commutativity;
    commutativity_level = level_of commutativity ~high:0.9 ~medium:0.5 }

let level_to_string = function
  | High -> "High"
  | Medium -> "Medium"
  | Low -> "Low"

let pp ppf c =
  Format.fprintf ppf
    "%d qubits, %d gates (%d two-qubit), depth %d, par %.2f (%s), loc %.2f (%s), comm %.2f (%s)"
    c.qubits c.gates c.two_qubit_gates c.depth c.parallelism
    (level_to_string c.parallelism_level)
    c.spatial_locality
    (level_to_string c.spatial_locality_level)
    c.commutativity
    (level_to_string c.commutativity_level)
