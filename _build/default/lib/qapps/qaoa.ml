module Gate = Qgate.Gate

let default_gamma = 5.67
let default_beta = 1.26

let circuit ?(gamma = default_gamma) ?(beta = default_beta) ?(levels = 1) g =
  if levels < 1 then invalid_arg "Qaoa.circuit: need at least one level";
  let n = Qgraph.Graph.n_vertices g in
  let hadamards = List.init n (fun q -> Gate.h q) in
  let level =
    List.concat_map
      (fun (u, v, w) ->
        [ Gate.cnot u v; Gate.rz (gamma *. w) v; Gate.cnot u v ])
      (Qgraph.Graph.edges g)
    @ List.init n (fun q -> Gate.rx (2. *. beta) q)
  in
  Qgate.Circuit.make n
    (hadamards @ List.concat (List.init levels (fun _ -> level)))

let triangle_example () =
  circuit (Qgraph.Graph.of_edges 3 [ (0, 1); (1, 2); (0, 2) ])

let cut_expectation g prob =
  let n = Qgraph.Graph.n_vertices g in
  let total = ref 0. in
  for z = 0 to (1 lsl n) - 1 do
    let p = prob z in
    if p > 0. then begin
      (* qubit q is bit (n-1-q) of the basis index *)
      let side = Array.init n (fun q -> (z lsr (n - 1 - q)) land 1 = 1) in
      total := !total +. (p *. Qgraph.Graph.cut_weight g side)
    end
  done;
  !total
