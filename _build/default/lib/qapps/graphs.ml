module Graph = Qgraph.Graph

let line n =
  Graph.of_edges n (List.init (max 0 (n - 1)) (fun k -> (k, k + 1)))

let regular4 ~seed n =
  if n < 5 then invalid_arg "Graphs.regular4: need at least 5 vertices";
  let g = Graph.create n in
  for v = 0 to n - 1 do
    Graph.add_edge g v ((v + 1) mod n);
    Graph.add_edge g v ((v + 2) mod n)
  done;
  (* degree-preserving double-edge swaps keep the graph 4-regular; reject
     swaps that create parallel edges, self-loops or disconnect it *)
  let rng = Qgraph.Rand.create seed in
  for _ = 1 to 10 * n do
    let edges = Array.of_list (Graph.edges g) in
    let a, b, _ = Qgraph.Rand.choose rng edges in
    let c, d, _ = Qgraph.Rand.choose rng edges in
    let distinct = List.sort_uniq compare [ a; b; c; d ] in
    if
      List.length distinct = 4
      && (not (Graph.has_edge g a c))
      && not (Graph.has_edge g b d)
    then begin
      Graph.remove_edge g a b;
      Graph.remove_edge g c d;
      Graph.add_edge g a c;
      Graph.add_edge g b d;
      if not (Graph.is_connected g) then begin
        (* undo a disconnecting swap *)
        Graph.remove_edge g a c;
        Graph.remove_edge g b d;
        Graph.add_edge g a b;
        Graph.add_edge g c d
      end
    end
  done;
  g

let cluster ~seed ~clusters ~size =
  if size < 2 || clusters < 2 then
    invalid_arg "Graphs.cluster: need at least 2 clusters of 2";
  let n = clusters * size in
  let g = Graph.create n in
  for c = 0 to clusters - 1 do
    let base = c * size in
    for u = 0 to size - 1 do
      for v = u + 1 to size - 1 do
        Graph.add_edge g (base + u) (base + v)
      done
    done
  done;
  (* join consecutive clusters through seeded representative vertices so
     instances differ across seeds without changing the family shape *)
  let rng = Qgraph.Rand.create seed in
  for c = 0 to clusters - 1 do
    let next = (c + 1) mod clusters in
    let u = (c * size) + Qgraph.Rand.int rng size in
    let v = (next * size) + Qgraph.Rand.int rng size in
    if not (Graph.has_edge g u v) then Graph.add_edge g u v
  done;
  g

let max_cut_brute_force g =
  let n = Graph.n_vertices g in
  if n > 24 then invalid_arg "Graphs.max_cut_brute_force: too many vertices";
  let best = ref (-1.) and best_side = ref (Array.make n false) in
  for mask = 0 to (1 lsl n) - 1 do
    let side = Array.init n (fun v -> (mask lsr v) land 1 = 1) in
    let value = Graph.cut_weight g side in
    if value > !best then begin
      best := value;
      best_side := side
    end
  done;
  (!best, !best_side)
