module Pauli = Qgate.Pauli

type order = First | Second

(* exp(-i h coeff t P) = rotation_circuit with theta = 2 coeff t *)
let term_gates ~time term =
  Pauli.rotation_circuit ~theta:(2. *. time)
    (Pauli.make term.Pauli.coeff term.Pauli.ops)

let step_gates ?(order = First) ~time terms =
  match order with
  | First -> List.concat_map (fun t -> term_gates ~time t) terms
  | Second ->
    let half = List.concat_map (fun t -> term_gates ~time:(time /. 2.) t) terms in
    let back =
      List.concat_map
        (fun t -> term_gates ~time:(time /. 2.) t)
        (List.rev terms)
    in
    half @ back

let circuit ?order ~n ~time ~steps terms =
  if steps <= 0 then invalid_arg "Trotter.circuit: non-positive step count";
  List.iter
    (fun t ->
      if Pauli.n_qubits t <> n then
        invalid_arg "Trotter.circuit: term register size mismatch")
    terms;
  let dt = time /. float_of_int steps in
  Qgate.Circuit.make n
    (List.concat (List.init steps (fun _ -> step_gates ?order ~time:dt terms)))

let exact ~n ~time terms =
  let dim = 1 lsl n in
  let h =
    List.fold_left
      (fun acc t -> Qnum.Cmat.add acc (Pauli.matrix t))
      (Qnum.Cmat.zeros dim dim)
      terms
  in
  Qnum.Expm.propagator h time
