(** Transverse-field Ising model: Trotterized ground-state evolution.

    The benchmark circuits are first-order Trotter steps of
    H = -J Σ Z_i·Z_{i+1} - h Σ X_i on a chain: per step, a ZZ rotation
    (CNOT–Rz–CNOT) on each neighbor pair — even pairs then odd pairs, so
    the circuit is highly parallel — followed by an Rx layer. This matches
    Table 3's "high parallelism / high spatial locality / medium
    commutativity" characterization. *)

val circuit :
  ?j_coupling:float -> ?field:float -> ?dt:float -> ?steps:int -> int ->
  Qgate.Circuit.t
(** [circuit n] on an n-qubit chain. Defaults: J = 1, h = 0.7, dt = 0.3,
    2 Trotter steps, plus an initial |+…+⟩ preparation layer. *)

val hamiltonian_terms :
  ?j_coupling:float -> ?field:float -> int -> Qgate.Pauli.t list
(** The Pauli terms of H (for energy measurement in examples/tests). *)
