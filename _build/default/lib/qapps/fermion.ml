module Pauli = Qgate.Pauli
module Cx = Qnum.Cx

type encoding = Jordan_wigner | Bravyi_kitaev

let encoding_name = function
  | Jordan_wigner -> "Jordan-Wigner"
  | Bravyi_kitaev -> "Bravyi-Kitaev"

type op_sum = (Cx.t * Pauli.t) list

(* --- Fenwick-tree index sets for the Bravyi–Kitaev encoding ---
   Modes are 0-indexed; the Fenwick (binary indexed) tree works 1-based.
   update_set(j): qubits storing partial sums that include mode j
   (Fenwick update path above j).
   parity_set(j): qubits whose sum gives the parity of modes 0..j-1
   (Fenwick prefix-query path of j).
   flip_set(j): qubits whose occupation is folded into qubit j itself
   (the Fenwick node's interior query path). *)

let update_set ~n j =
  if j < 0 || j >= n then invalid_arg "Fermion.update_set: mode out of range";
  let rec go i acc =
    let i = i + (i land -i) in
    if i <= n then go i ((i - 1) :: acc) else List.rev acc
  in
  go (j + 1) []

let parity_set ~n j =
  if j < 0 || j >= n then invalid_arg "Fermion.parity_set: mode out of range";
  let rec go i acc =
    if i <= 0 then List.rev acc else go (i - (i land -i)) ((i - 1) :: acc)
  in
  go j []

let flip_set ~n j =
  if j < 0 || j >= n then invalid_arg "Fermion.flip_set: mode out of range";
  let i = j + 1 in
  let low = i - (i land -i) in
  let rec go k acc =
    if k <= low then List.rev acc else go (k - (k land -k)) ((k - 1) :: acc)
  in
  go (i - 1) []

(* --- normalized sums of Pauli strings --- *)

let normalize terms =
  let table = Hashtbl.create 16 in
  List.iter
    (fun ((c : Cx.t), (p : Pauli.t)) ->
      let key = Array.to_list p.Pauli.ops in
      let prev =
        match Hashtbl.find_opt table key with
        | Some (c0, _) -> c0
        | None -> Cx.zero
      in
      Hashtbl.replace table key (Cx.add prev (Cx.scale p.Pauli.coeff c), p))
    terms;
  Hashtbl.fold
    (fun _ (c, p) acc ->
      if Cx.abs c < 1e-12 then acc
      else (c, Pauli.make 1.0 p.Pauli.ops) :: acc)
    table []
  |> List.sort compare

let add_sums a b = normalize (a @ b)
let scale_sum z s = normalize (List.map (fun (c, p) -> (Cx.mul z c, p)) s)

let mul_sums a b =
  normalize
    (List.concat_map
       (fun (ca, pa) ->
         List.map
           (fun (cb, pb) ->
             let phase, p = Pauli.mul_phase pa pb in
             (Cx.mul (Cx.mul ca cb) phase, p))
           b)
       a)

let matrix_of_sum = function
  | [] -> invalid_arg "Fermion.matrix_of_sum: empty sum"
  | (c0, p0) :: _ as terms ->
    ignore (c0, p0);
    let n = Pauli.n_qubits (snd (List.hd terms)) in
    let dim = 1 lsl n in
    List.fold_left
      (fun acc (c, p) -> Qnum.Cmat.add acc (Qnum.Cmat.scale c (Pauli.matrix p)))
      (Qnum.Cmat.zeros dim dim)
      terms

(* --- ladder operators --- *)

let string_of_sites ~n sites =
  let ops = Array.make n Pauli.Pi in
  List.iter (fun (q, op) -> ops.(q) <- op) sites;
  Pauli.make 1.0 ops

let lowering encoding ~n j =
  if j < 0 || j >= n then invalid_arg "Fermion.lowering: mode out of range";
  match encoding with
  | Jordan_wigner ->
    (* a_j = Z_{0..j-1} (X_j + iY_j)/2 *)
    let chain = List.init j (fun k -> (k, Pauli.Pz)) in
    let x = string_of_sites ~n ((j, Pauli.Px) :: chain) in
    let y = string_of_sites ~n ((j, Pauli.Py) :: chain) in
    normalize [ (Cx.of_float 0.5, x); (Cx.make 0. 0.5, y) ]
  | Bravyi_kitaev ->
    (* Majorana pair: c_j = X_{U(j)} X_j Z_{P(j)},
       d_j = X_{U(j)} Y_j Z_{rho(j)} with rho = P for even j and
       P \ F for odd j; a_j = (c_j + i d_j)/2 *)
    let u = List.map (fun q -> (q, Pauli.Px)) (update_set ~n j) in
    let p = parity_set ~n j in
    let rho =
      if j mod 2 = 0 then p
      else
        let f = flip_set ~n j in
        List.filter (fun q -> not (List.mem q f)) p
    in
    let c_j =
      string_of_sites ~n (((j, Pauli.Px) :: u) @ List.map (fun q -> (q, Pauli.Pz)) p)
    in
    let d_j =
      string_of_sites ~n
        (((j, Pauli.Py) :: u) @ List.map (fun q -> (q, Pauli.Pz)) rho)
    in
    normalize [ (Cx.of_float 0.5, c_j); (Cx.make 0. 0.5, d_j) ]

let raising encoding ~n j =
  (* a†_j is the conjugate-transpose: conjugate coefficients (Pauli
     strings are Hermitian) *)
  List.map (fun (c, p) -> (Cx.conj c, p)) (lowering encoding ~n j)
  |> normalize

let number_operator encoding ~n j =
  mul_sums (raising encoding ~n j) (lowering encoding ~n j)

let rotations_of_generator name theta generator =
  List.map
    (fun ((c : Cx.t), p) ->
      if Float.abs (Cx.re c) > 1e-9 then
        invalid_arg (name ^ ": generator is not anti-Hermitian");
      (-2. *. theta *. Cx.im c, p))
    generator

let single_excitation_rotations encoding ~n ~theta ~i ~a =
  if i = a then invalid_arg "Fermion.single_excitation_rotations: i = a";
  let generator =
    add_sums
      (mul_sums (raising encoding ~n a) (lowering encoding ~n i))
      (scale_sum (Cx.of_float (-1.))
         (mul_sums (raising encoding ~n i) (lowering encoding ~n a)))
  in
  rotations_of_generator "Fermion.single_excitation_rotations" theta generator

let double_excitation_rotations encoding ~n ~theta ~i ~j ~a ~b =
  let distinct = List.sort_uniq compare [ i; j; a; b ] in
  if List.length distinct <> 4 then
    invalid_arg "Fermion.double_excitation_rotations: modes must be distinct";
  let product ops =
    List.fold_left
      (fun acc op -> mul_sums acc op)
      [ (Cx.one, Pauli.make 1.0 (Array.make n Pauli.Pi)) ]
      ops
  in
  let forward =
    product
      [ raising encoding ~n a; raising encoding ~n b; lowering encoding ~n j;
        lowering encoding ~n i ]
  in
  let backward =
    product
      [ raising encoding ~n i; raising encoding ~n j; lowering encoding ~n b;
        lowering encoding ~n a ]
  in
  let generator = add_sums forward (scale_sum (Cx.of_float (-1.)) backward) in
  rotations_of_generator "Fermion.double_excitation_rotations" theta generator
