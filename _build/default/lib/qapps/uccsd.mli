(** UCCSD ansatz circuits via the Jordan–Wigner transformation (paper
    Table 3, "UCCSD-nK"; §6.4).

    The unitary coupled-cluster singles-and-doubles ansatz exp(T - T†) is
    Trotterized term by term: each single excitation i→a contributes two
    Pauli strings (XZ…ZY - YZ…ZX)/2, each double excitation ij→ab the
    standard eight 4-operator strings with Z chains in between; every
    string becomes a basis-change + CNOT-ladder + Rz rotation
    ({!Qgate.Pauli.rotation_circuit}) — long diagonal chains with low
    parallelism and low commutativity, as Table 3 characterizes. *)

type excitation =
  | Single of int * int  (** occupied i → virtual a *)
  | Double of int * int * int * int  (** i<j → a<b *)

val excitations : int -> excitation list
(** All spin-orbital singles and doubles at half filling for [n] spin
    orbitals (n even, ≥ 4): occupied = 0..n/2-1, virtual = n/2..n-1. *)

val strings_of_excitation : n:int -> theta:float -> excitation ->
  (float * Qgate.Pauli.t) list
(** The (angle, string) rotations a Trotterized excitation expands to. *)

val circuit : ?seed:int -> ?encoding:Fermion.encoding -> int -> Qgate.Circuit.t
(** The full ansatz on [n] spin-orbital qubits with deterministic
    pseudo-random variational angles (they would come from the VQE outer
    loop; their values do not change the circuit's structure). The
    rotations are derived from the {!Fermion} operator algebra under the
    chosen encoding (default Jordan–Wigner, the paper's §5.2 also citing
    Bravyi–Kitaev). *)
