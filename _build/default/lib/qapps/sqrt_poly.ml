module Gate = Qgate.Gate
module Square = Qarith.Square

type t = {
  circuit : Qgate.Circuit.t;
  layout : Square.layout;
  n : int;
  target : int;
  iterations : int;
}

let oracle (l : Square.layout) ~target =
  let square = Square.circuit l in
  let mark =
    (* acc == target  =>  kick the |-> flag *)
    Qarith.Comparator.equal_const ~a:l.Square.acc ~value:target
      ~ancillas:l.Square.row ~flag:l.Square.flag
  in
  square @ mark @ Square.uncompute l

let diffusion (l : Square.layout) =
  let xs = l.Square.x in
  let h_layer = List.map (fun q -> Gate.h q) xs in
  let x_layer = List.map (fun q -> Gate.x q) xs in
  let kick =
    match List.rev xs with
    | [] -> []
    | target :: rev_controls ->
      let controls = List.rev rev_controls in
      [ Gate.h target ]
      @ Qarith.Mcx.mcx ~controls ~target ~ancillas:l.Square.row
      @ [ Gate.h target ]
  in
  h_layer @ x_layer @ kick @ x_layer @ h_layer

let build ?(iterations = 1) ~n ~target () =
  if iterations < 1 then invalid_arg "Sqrt_poly.build: need an iteration";
  let l = Square.layout n in
  if target < 0 || target >= 1 lsl (2 * n) then
    invalid_arg "Sqrt_poly.build: target out of range";
  let prepare =
    List.map (fun q -> Gate.h q) l.Square.x
    @ [ Gate.x l.Square.flag; Gate.h l.Square.flag ]
  in
  let round = oracle l ~target @ diffusion l in
  let finish = [ Gate.h l.Square.flag; Gate.x l.Square.flag ] in
  let gates =
    prepare @ List.concat (List.init iterations (fun _ -> round)) @ finish
  in
  { circuit = Qgate.Circuit.make l.Square.total_qubits gates;
    layout = l;
    n;
    target;
    iterations }

let success_probability t =
  let st =
    Qsim.State.apply_circuit
      (Qsim.State.zero t.layout.Square.total_qubits)
      t.circuit
  in
  let n_total = t.layout.Square.total_qubits in
  let probs = Array.make (1 lsl t.n) 0. in
  Array.iteri
    (fun basis p ->
      (* x register bits: qubit q is bit (n_total-1-q) of the index *)
      let x =
        List.fold_left
          (fun acc (k, q) ->
            acc lor (((basis lsr (n_total - 1 - q)) land 1) lsl k))
          0
          (List.mapi (fun k q -> (k, q)) t.layout.Square.x)
      in
      probs.(x) <- probs.(x) +. p)
    (Qsim.State.probabilities st);
  probs
