(** Program characteristics (paper Table 3).

    Quantitative versions of the paper's High/Medium/Low labels:

    - {e parallelism}: average gates per unit-depth layer, normalized by
      half the register (a fully parallel 2-qubit-gate circuit scores 1).
    - {e spatial locality}: fraction of 2-qubit interaction weight at
      grid distance 1 under the recursive-bisection initial placement.
    - {e commutativity}: fraction of dependence-adjacent instruction pairs
      (consecutive on some qubit) that commute as operators, measured on
      the diagonal-contracted GDG scale by sampling. *)

type level = High | Medium | Low

type t = {
  qubits : int;
  gates : int;
  two_qubit_gates : int;
  depth : int;
  parallelism : float;
  parallelism_level : level;
  spatial_locality : float;
  spatial_locality_level : level;
  commutativity : float;
  commutativity_level : level;
}

val analyze : ?topology:Qmap.Topology.t -> Qgate.Circuit.t -> t
(** [topology] defaults to the smallest near-square grid fitting the
    circuit. Commutation sampling is deterministic. *)

val level_to_string : level -> string
val pp : Format.formatter -> t -> unit
