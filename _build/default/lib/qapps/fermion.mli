(** Fermion-to-qubit encodings: Jordan–Wigner and Bravyi–Kitaev.

    The paper's UCCSD benchmark "is derived from the Jordan-Wigner or
    Bravyi-Kitaev transformations" (§5.2, citing [29, 47]). This module
    implements both: ladder operators become weighted sums of Pauli
    strings — long Z chains under Jordan–Wigner, logarithmic-weight
    strings under Bravyi–Kitaev (Fenwick-tree parity storage) — and
    excitation generators expand, via symbolic Pauli-algebra products,
    into the rotations the ansatz circuits implement.

    Correctness is pinned down by the canonical anticommutation relations
    {aᵢ, aⱼ} = 0 and {aᵢ, aⱼ†} = δᵢⱼ, which the test suite checks densely
    for both encodings. *)

type encoding = Jordan_wigner | Bravyi_kitaev

val encoding_name : encoding -> string

type op_sum = (Qnum.Cx.t * Qgate.Pauli.t) list
(** A normalized weighted sum of Pauli strings (zero terms dropped,
    like strings combined). *)

val lowering : encoding -> n:int -> int -> op_sum
(** The annihilation operator a_j on an [n]-mode register. *)

val raising : encoding -> n:int -> int -> op_sum
(** a†_j. *)

val number_operator : encoding -> n:int -> int -> op_sum
(** a†_j a_j. *)

val add_sums : op_sum -> op_sum -> op_sum
val scale_sum : Qnum.Cx.t -> op_sum -> op_sum
val mul_sums : op_sum -> op_sum -> op_sum
val matrix_of_sum : op_sum -> Qnum.Cmat.t
(** Dense matrix on 2ⁿ (small n only). *)

val single_excitation_rotations :
  encoding -> n:int -> theta:float -> i:int -> a:int -> (float * Qgate.Pauli.t) list
(** The rotations implementing exp(θ(a†_a aᵢ − aᵢ† a_a)): the generator is
    anti-Hermitian, so every Pauli term carries an imaginary coefficient
    iβ and contributes a rotation exp(-i(φ/2)P) with φ = -2θβ (the
    format {!Qgate.Pauli.rotation_circuit} consumes). Raises
    [Invalid_argument] if a residual non-imaginary term appears. *)

val double_excitation_rotations :
  encoding -> n:int -> theta:float -> i:int -> j:int -> a:int -> b:int ->
  (float * Qgate.Pauli.t) list
(** Likewise for exp(θ(a†_a a†_b aⱼ aᵢ − h.c.)). Raises on repeated
    modes. *)

(** {1 Bravyi–Kitaev index sets} (exposed for tests) *)

val update_set : n:int -> int -> int list
val parity_set : n:int -> int -> int list
val flip_set : n:int -> int -> int list
