module Gate = Qgate.Gate

let circuit ?approximation n =
  if n < 1 then invalid_arg "Qft.circuit: need at least one qubit";
  let keep k =
    match approximation with None -> true | Some cutoff -> k <= cutoff
  in
  let body =
    List.concat
      (List.init n (fun target ->
           Gate.h target
           :: List.concat
                (List.init (n - target - 1) (fun j ->
                     let control = target + 1 + j in
                     let k = j + 2 in
                     if keep k then
                       [ Gate.cphase (2. *. Float.pi /. Float.pow 2. (float_of_int k))
                           control target ]
                     else []))))
  in
  let reversal =
    List.init (n / 2) (fun k -> Gate.swap k (n - 1 - k))
  in
  Qgate.Circuit.make n (body @ reversal)

let matrix n =
  let dim = 1 lsl n in
  let omega = 2. *. Float.pi /. float_of_int dim in
  let scale = 1. /. Float.sqrt (float_of_int dim) in
  Qnum.Cmat.init dim dim (fun j k ->
      Qnum.Cx.scale scale (Qnum.Cx.cis (omega *. float_of_int (j * k))))
