module Gate = Qgate.Gate

let circuit ?(j_coupling = 1.0) ?(field = 0.7) ?(dt = 0.3) ?(steps = 2) n =
  if n < 2 then invalid_arg "Ising.circuit: need at least 2 qubits";
  if steps < 1 then invalid_arg "Ising.circuit: need at least one step";
  let zz_angle = -2. *. j_coupling *. dt in
  let x_angle = -2. *. field *. dt in
  let zz u v = [ Gate.cnot u v; Gate.rz zz_angle v; Gate.cnot u v ] in
  let pairs parity =
    List.concat
      (List.filter_map
         (fun k -> if k mod 2 = parity && k + 1 < n then Some (zz k (k + 1)) else None)
         (List.init (n - 1) (fun k -> k)))
  in
  let step =
    pairs 0 @ pairs 1 @ List.init n (fun q -> Gate.rx x_angle q)
  in
  Qgate.Circuit.make n
    (List.init n (fun q -> Gate.h q)
    @ List.concat (List.init steps (fun _ -> step)))

let hamiltonian_terms ?(j_coupling = 1.0) ?(field = 0.7) n =
  let op_string f = String.init n f in
  let zz k =
    Qgate.Pauli.of_string (-.j_coupling)
      (op_string (fun q -> if q = k || q = k + 1 then 'Z' else 'I'))
  in
  let x k =
    Qgate.Pauli.of_string (-.field)
      (op_string (fun q -> if q = k then 'X' else 'I'))
  in
  List.init (n - 1) zz @ List.init n x
