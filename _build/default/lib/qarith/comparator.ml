module Gate = Qgate.Gate

let less_than ~a ~b ~ancilla ~flag =
  let n = List.length a in
  if n = 0 || List.length b <> n then
    invalid_arg "Comparator: registers must have equal non-zero width";
  let all = (flag :: ancilla :: a) @ b in
  let sorted = List.sort compare all in
  let rec dup = function
    | x :: y :: _ when x = y -> true
    | _ :: rest -> dup rest
    | [] -> false
  in
  if dup sorted then invalid_arg "Comparator: overlapping qubits";
  (* complement a, run the MAJ carry chain of (2^n-1-a) + b, copy the
     carry-out, then reverse the (self-inverse) chain and uncomplement *)
  let complement = List.map (fun q -> Gate.x q) a in
  let arr_a = Array.of_list a and arr_b = Array.of_list b in
  let carry k = if k = 0 then ancilla else arr_a.(k - 1) in
  let majs =
    List.concat
      (List.init n (fun k -> Adder.maj (carry k) arr_b.(k) arr_a.(k)))
  in
  complement @ majs
  @ [ Gate.cnot arr_a.(n - 1) flag ]
  @ List.rev majs @ complement

let equal_const ~a ~value ~ancillas ~flag =
  if a = [] then invalid_arg "Comparator.equal_const: empty register";
  if value < 0 || value >= 1 lsl List.length a then
    invalid_arg "Comparator.equal_const: value out of range";
  let flips = Mcx.flip_zero_controls a ~value in
  flips @ Mcx.mcx ~controls:a ~target:flag ~ancillas @ flips
