lib/qarith/square.ml: Adder List Qgate
