lib/qarith/rev_sim.mli: Qgate
