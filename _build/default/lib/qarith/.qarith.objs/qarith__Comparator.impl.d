lib/qarith/comparator.ml: Adder Array List Mcx Qgate
