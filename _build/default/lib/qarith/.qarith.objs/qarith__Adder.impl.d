lib/qarith/adder.ml: Array List Qgate
