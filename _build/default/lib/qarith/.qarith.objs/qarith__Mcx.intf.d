lib/qarith/mcx.mli: Qgate
