lib/qarith/rev_sim.ml: Array List Printf Qgate
