lib/qarith/mcx.ml: Array List Qgate
