lib/qarith/comparator.mli: Qgate
