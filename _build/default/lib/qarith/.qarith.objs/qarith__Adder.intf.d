lib/qarith/adder.mli: Qgate
