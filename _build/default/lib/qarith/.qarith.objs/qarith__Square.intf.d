lib/qarith/square.mli: Qgate
