(** Ripple-carry addition — the CDKM/Cuccaro adder.

    Registers are qubit-index lists, least-significant bit first. The
    adder computes b ← a + b in place using one ancilla (initially |0⟩,
    restored), with MAJ/UMA blocks; the modular variant drops the carry
    out, which is exact whenever the sum fits the register. *)

val maj : int -> int -> int -> Qgate.Gate.t list
(** [maj c b a]: the majority block (2 CNOT + 1 Toffoli). *)

val uma : int -> int -> int -> Qgate.Gate.t list
(** [uma c b a]: the unmajority-and-add block. *)

val ripple_add :
  a:int list -> b:int list -> ancilla:int -> carry_out:int -> Qgate.Gate.t list
(** Full adder: b ← a + b, carry into [carry_out] (must be |0⟩). Registers
    must have equal non-zero width and all qubits distinct; raises
    [Invalid_argument] otherwise. *)

val ripple_add_mod :
  a:int list -> b:int list -> ancilla:int -> Qgate.Gate.t list
(** Modular adder: b ← (a + b) mod 2^width. *)
