module Gate = Qgate.Gate

let is_classical g =
  match g.Gate.kind with
  | Gate.X | Gate.Cnot | Gate.Ccx | Gate.Swap | Gate.I -> true
  | Gate.Y | Gate.Z | Gate.H | Gate.S | Gate.Sdg | Gate.T | Gate.Tdg
  | Gate.Rx _ | Gate.Ry _ | Gate.Rz _ | Gate.Phase _ | Gate.Cz
  | Gate.Cphase _ | Gate.Iswap | Gate.Sqrt_iswap | Gate.Rxx _ | Gate.Ryy _
  | Gate.Rzz _ ->
    false

let apply_gate state g =
  let n = Array.length state in
  let check q =
    if q < 0 || q >= n then invalid_arg "Rev_sim: qubit out of range"
  in
  List.iter check (Gate.qubits g);
  match (g.Gate.kind, Gate.qubits g) with
  | Gate.I, _ -> ()
  | Gate.X, [ q ] -> state.(q) <- not state.(q)
  | Gate.Cnot, [ c; t ] -> if state.(c) then state.(t) <- not state.(t)
  | Gate.Ccx, [ a; b; t ] ->
    if state.(a) && state.(b) then state.(t) <- not state.(t)
  | Gate.Swap, [ a; b ] ->
    let tmp = state.(a) in
    state.(a) <- state.(b);
    state.(b) <- tmp
  | _ ->
    invalid_arg
      (Printf.sprintf "Rev_sim: non-classical gate %s" (Gate.to_string g))

let run circuit input =
  if Array.length input <> Qgate.Circuit.n_qubits circuit then
    invalid_arg "Rev_sim.run: register size mismatch";
  let state = Array.copy input in
  List.iter (apply_gate state) (Qgate.Circuit.gates circuit);
  state

let run_int circuit ~n_qubits value =
  if value < 0 || value >= 1 lsl n_qubits then
    invalid_arg "Rev_sim.run_int: value out of range";
  let input =
    Array.init n_qubits (fun q -> (value lsr (n_qubits - 1 - q)) land 1 = 1)
  in
  let output = run circuit input in
  Array.to_list output
  |> List.fold_left (fun acc bit -> (acc lsl 1) lor if bit then 1 else 0) 0

let bits_of_int ~width value =
  if value < 0 then invalid_arg "Rev_sim.bits_of_int: negative value";
  List.init width (fun k -> (value lsr k) land 1 = 1)

let int_of_bits bits =
  List.fold_left
    (fun acc bit -> (acc lsl 1) lor if bit then 1 else 0)
    0 (List.rev bits)
