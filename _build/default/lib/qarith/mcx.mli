(** Multi-controlled NOT with clean ancillas.

    The standard Toffoli ladder: AND the controls pairwise into ancillas,
    apply the final Toffoli onto the target, and uncompute. With k ≥ 3
    controls it needs k − 2 clean (|0⟩, restored) ancillas. *)

val mcx :
  controls:int list -> target:int -> ancillas:int list -> Qgate.Gate.t list
(** Raises [Invalid_argument] on overlapping qubits, no controls, or too
    few ancillas. *)

val mcz_via_flag :
  controls:int list -> flag:int -> ancillas:int list -> Qgate.Gate.t list
(** Phase-flip on |11…1⟩ by kickback: the [flag] qubit must be prepared in
    |−⟩ by the caller (X then H); this emits only the {!mcx} onto it. *)

val flip_zero_controls : int list -> value:int -> Qgate.Gate.t list
(** X gates on the control qubits whose bit of [value] is 0 (LSB-first
    register order) — turning an equality test against [value] into an
    all-ones test. Self-inverse. *)
