(** Reversible squaring: acc ← x² by shift-and-add over partial products.

    For each bit i of x, the row register is loaded with x_i·x (Toffolis),
    rippled into the accumulator at offset i (zero-padded modular add), and
    uncomputed. The accumulator must be |0⟩ on input; x is preserved. *)

type layout = {
  n : int;  (** input width *)
  x : int list;  (** input register, LSB first *)
  acc : int list;  (** 2n-bit accumulator, LSB first *)
  row : int list;  (** 2n-bit partial-product scratch, |0⟩ in and out *)
  carry : int;  (** adder ancilla *)
  flag : int;  (** oracle kickback qubit (unused by the squarer itself) *)
  total_qubits : int;
}

val layout : int -> layout
(** Register layout for input width [n ≥ 2]: n + 2n + 2n + 2 qubits. *)

val circuit : layout -> Qgate.Gate.t list
(** The squaring circuit on the layout's registers. *)

val uncompute : layout -> Qgate.Gate.t list
(** Inverse circuit (acc ← acc − x², used by oracles). *)
