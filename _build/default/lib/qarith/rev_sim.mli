(** Classical simulation of reversible circuits.

    X / CNOT / Toffoli / SWAP circuits permute computational basis states,
    so they can be simulated on bit vectors in linear time — which is how
    the arithmetic building blocks (adders, comparators, squarers) are
    tested exhaustively on register sizes far beyond state-vector reach. *)

val is_classical : Qgate.Gate.t -> bool
(** True for X, Cnot, Ccx, Swap and I. *)

val apply_gate : bool array -> Qgate.Gate.t -> unit
(** In-place update of the basis state. Raises [Invalid_argument] for
    non-classical gates or out-of-range qubits. *)

val run : Qgate.Circuit.t -> bool array -> bool array
(** [run circuit input] returns the output basis state; the input array is
    not modified. Raises like {!apply_gate}. *)

val run_int : Qgate.Circuit.t -> n_qubits:int -> int -> int
(** Basis states as integers, qubit 0 = most significant bit (matching the
    simulator's convention). *)

(** {1 Register plumbing} *)

val bits_of_int : width:int -> int -> bool list
(** Little-endian (LSB first) bit list of a non-negative integer. *)

val int_of_bits : bool list -> int
(** Little-endian decoding. *)
