module Gate = Qgate.Gate

let maj c b a = [ Gate.cnot a b; Gate.cnot a c; Gate.ccx c b a ]
let uma c b a = [ Gate.ccx c b a; Gate.cnot a c; Gate.cnot c b ]

let check_registers ~a ~b extra =
  let n = List.length a in
  if n = 0 || List.length b <> n then
    invalid_arg "Adder: registers must have equal non-zero width";
  let all = a @ b @ extra in
  let sorted = List.sort compare all in
  let rec dup = function
    | x :: y :: _ when x = y -> true
    | _ :: rest -> dup rest
    | [] -> false
  in
  if dup sorted then invalid_arg "Adder: overlapping registers"

(* carry wiring: carry into bit k is held on a_(k-1) after the MAJ chain *)
let chain ~a ~b ~ancilla =
  let a = Array.of_list a and b = Array.of_list b in
  let n = Array.length a in
  let carry k = if k = 0 then ancilla else a.(k - 1) in
  let majs =
    List.concat (List.init n (fun k -> maj (carry k) b.(k) a.(k)))
  in
  let umas =
    List.concat
      (List.init n (fun k ->
           let k = n - 1 - k in
           uma (carry k) b.(k) a.(k)))
  in
  (majs, umas, a.(n - 1))

let ripple_add ~a ~b ~ancilla ~carry_out =
  check_registers ~a ~b [ ancilla; carry_out ];
  let majs, umas, top = chain ~a ~b ~ancilla in
  majs @ [ Gate.cnot top carry_out ] @ umas

let ripple_add_mod ~a ~b ~ancilla =
  check_registers ~a ~b [ ancilla ];
  let majs, umas, _ = chain ~a ~b ~ancilla in
  majs @ umas
