(** Reversible magnitude comparison.

    [less_than] flips the flag qubit iff a < b, leaving both operand
    registers and the ancilla unchanged: the MAJ carry chain of the
    Cuccaro adder computes the borrow of (2ⁿ-1-a) + b, whose carry-out is
    exactly [a < b]; running the chain backwards uncomputes it. *)

val less_than :
  a:int list -> b:int list -> ancilla:int -> flag:int -> Qgate.Gate.t list
(** Registers are LSB-first qubit lists of equal width; [ancilla] must be
    |0⟩ (restored); the flag is XOR-ed with the predicate. Raises
    [Invalid_argument] on width mismatch or overlapping qubits. *)

val equal_const :
  a:int list -> value:int -> ancillas:int list -> flag:int -> Qgate.Gate.t list
(** Flag ← flag ⊕ [a = value] via X-conjugated multi-controlled NOT
    (needs |a|-2 clean ancillas for |a| ≥ 3). *)
