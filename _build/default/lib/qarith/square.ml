module Gate = Qgate.Gate

type layout = {
  n : int;
  x : int list;
  acc : int list;
  row : int list;
  carry : int;
  flag : int;
  total_qubits : int;
}

let layout n =
  if n < 2 then invalid_arg "Square.layout: width must be at least 2";
  let range start len = List.init len (fun k -> start + k) in
  let x = range 0 n in
  let acc = range n (2 * n) in
  let row = range (3 * n) (2 * n) in
  let carry = 5 * n in
  let flag = (5 * n) + 1 in
  { n; x; acc; row; carry; flag; total_qubits = (5 * n) + 2 }

let nth l k = List.nth l k

(* one partial-product round: load row with x_i·x, add row into acc at
   offset i (modular over the remaining width), unload row *)
let round l i =
  let xi = nth l.x i in
  let load =
    List.concat
      (List.init l.n (fun j ->
           let rj = nth l.row j in
           if j = i then [ Gate.cnot xi rj ] else [ Gate.ccx xi (nth l.x j) rj ]))
  in
  let width = (2 * l.n) - i in
  let addend = List.init width (fun k -> nth l.row k) in
  let target = List.init width (fun k -> nth l.acc (i + k)) in
  let add = Adder.ripple_add_mod ~a:addend ~b:target ~ancilla:l.carry in
  load @ add @ List.rev load

let circuit l = List.concat (List.init l.n (fun i -> round l i))

let uncompute l =
  let adj g =
    match g.Gate.kind with
    | Gate.X | Gate.Cnot | Gate.Ccx | Gate.Swap -> g
    | _ -> Gate.adjoint g
  in
  List.rev_map adj (circuit l)
