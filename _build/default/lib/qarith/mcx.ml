module Gate = Qgate.Gate

let check_distinct qs name =
  let sorted = List.sort compare qs in
  let rec dup = function
    | x :: y :: _ when x = y -> true
    | _ :: rest -> dup rest
    | [] -> false
  in
  if dup sorted then invalid_arg (name ^ ": overlapping qubits")

let mcx ~controls ~target ~ancillas =
  let k = List.length controls in
  if k = 0 then invalid_arg "Mcx.mcx: no controls";
  check_distinct ((target :: controls) @ ancillas) "Mcx.mcx";
  match controls with
  | [ c ] -> [ Gate.cnot c target ]
  | [ c1; c2 ] -> [ Gate.ccx c1 c2 target ]
  | c1 :: c2 :: rest ->
    if List.length ancillas < k - 2 then
      invalid_arg "Mcx.mcx: not enough ancillas";
    let ancillas = Array.of_list ancillas in
    let compute = ref [ Gate.ccx c1 c2 ancillas.(0) ] in
    List.iteri
      (fun idx c ->
        if idx < List.length rest - 1 then
          compute := Gate.ccx ancillas.(idx) c ancillas.(idx + 1) :: !compute)
      rest;
    let compute = List.rev !compute in
    let last_control = List.nth rest (List.length rest - 1) in
    let top_anc = ancillas.(List.length rest - 1) in
    compute
    @ [ Gate.ccx top_anc last_control target ]
    @ List.rev compute
  | [] -> assert false

let mcz_via_flag ~controls ~flag ~ancillas = mcx ~controls ~target:flag ~ancillas

let flip_zero_controls controls ~value =
  List.concat
    (List.mapi
       (fun k q -> if (value lsr k) land 1 = 0 then [ Gate.x q ] else [])
       controls)
