(** Device topologies.

    The paper evaluates on a rectangular-grid qubit topology with
    nearest-neighbor 2-qubit operations (§3.4.1); the motivating example
    uses 1-D nearest-neighbor connectivity. *)

type t =
  | Line of int
  | Grid of Qgraph.Grid.t
  | Full of int  (** all-to-all; makes mapping a no-op *)

val line : int -> t
val grid_for : int -> t
(** Smallest near-square grid with at least [n] sites. *)

val full : int -> t

val n_sites : t -> int
val connected : t -> int -> int -> bool
val graph : t -> Qgraph.Graph.t
val path : t -> int -> int -> int list
(** A shortest site path (inclusive). Raises [Not_found] if disconnected. *)

val distance : t -> int -> int -> int
(** Hop distance. *)

val pp : Format.formatter -> t -> unit
