lib/qmap/placement.ml: Array Qgate Qgraph Qnum Topology
