lib/qmap/router.mli: Placement Qgate Topology
