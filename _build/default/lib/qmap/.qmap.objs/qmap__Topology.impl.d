lib/qmap/topology.ml: Format List Qgraph
