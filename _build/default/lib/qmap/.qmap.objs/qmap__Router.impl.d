lib/qmap/router.ml: List Placement Qgate Topology
