lib/qmap/placement.mli: Qgate Qnum Topology
