lib/qmap/topology.mli: Format Qgraph
