type t = Line of int | Grid of Qgraph.Grid.t | Full of int

let line n =
  if n <= 0 then invalid_arg "Topology.line: non-positive size";
  Line n

let grid_for n = Grid (Qgraph.Grid.square_for n)

let full n =
  if n <= 0 then invalid_arg "Topology.full: non-positive size";
  Full n

let n_sites = function
  | Line n -> n
  | Grid g -> Qgraph.Grid.size g
  | Full n -> n

let connected t a b =
  let n = n_sites t in
  if a < 0 || b < 0 || a >= n || b >= n then
    invalid_arg "Topology.connected: site out of range";
  match t with
  | Line _ -> abs (a - b) = 1
  | Grid g -> Qgraph.Grid.adjacent g a b
  | Full _ -> a <> b

let graph = function
  | Line n ->
    Qgraph.Graph.of_edges n (List.init (n - 1) (fun k -> (k, k + 1)))
  | Grid g -> Qgraph.Grid.graph g
  | Full n ->
    let edges = ref [] in
    for a = 0 to n - 1 do
      for b = a + 1 to n - 1 do
        edges := (a, b) :: !edges
      done
    done;
    Qgraph.Graph.of_edges n !edges

let path t a b =
  match t with
  | Full _ -> if a = b then [ a ] else [ a; b ]
  | Line _ ->
    if a <= b then List.init (b - a + 1) (fun k -> a + k)
    else List.init (a - b + 1) (fun k -> a - k)
  | Grid _ -> Qgraph.Graph.shortest_path (graph t) a b

let distance t a b =
  match t with
  | Full _ -> if a = b then 0 else 1
  | Line _ -> abs (a - b)
  | Grid g -> Qgraph.Grid.distance g a b

let pp ppf = function
  | Line n -> Format.fprintf ppf "line(%d)" n
  | Grid g ->
    Format.fprintf ppf "grid(%dx%d)" g.Qgraph.Grid.width g.Qgraph.Grid.height
  | Full n -> Format.fprintf ppf "full(%d)" n
