(** OpenQASM 2.0 subset — serialization for circuits.

    Supports the header, a single [qreg], optional [creg] (ignored),
    comments, [barrier]/[measure] statements (ignored on parse),
    user-defined parameterized gates
    ([gate name(p, …) a, b { … }], expanded inline with parameter and
    qubit substitution, nested up to depth 64), and the built-in gate
    applications this project emits: id, x, y, z, h, s, sdg, t, tdg,
    rx(θ), ry(θ), rz(θ), p(θ)/u1(θ), cx, cz, cp(θ)/cu1(θ), swap, iswap,
    rxx(θ), ryy(θ), rzz(θ), ccx. Angle expressions allow literals, [pi],
    gate parameters, unary minus, [+ - * /] and parentheses. *)

exception Parse_error of string
(** Raised with a message containing the offending line. *)

val of_string : string -> Circuit.t
val to_string : Circuit.t -> string

val read_file : string -> Circuit.t
val write_file : string -> Circuit.t -> unit
