exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* --- tiny recursive-descent parser for angle expressions --- *)

type tok =
  | Num of float
  | Pi
  | Ident of string
  | Plus
  | Minus
  | Star
  | Slash
  | Lpar
  | Rpar

let lex_expr s =
  let n = String.length s in
  let toks = ref [] in
  let k = ref 0 in
  while !k < n do
    let ch = s.[!k] in
    if ch = ' ' || ch = '\t' then incr k
    else if ch = '+' then (toks := Plus :: !toks; incr k)
    else if ch = '-' then (toks := Minus :: !toks; incr k)
    else if ch = '*' then (toks := Star :: !toks; incr k)
    else if ch = '/' then (toks := Slash :: !toks; incr k)
    else if ch = '(' then (toks := Lpar :: !toks; incr k)
    else if ch = ')' then (toks := Rpar :: !toks; incr k)
    else if (ch >= '0' && ch <= '9') || ch = '.' then begin
      let start = !k in
      while
        !k < n
        && ((s.[!k] >= '0' && s.[!k] <= '9')
            || s.[!k] = '.' || s.[!k] = 'e' || s.[!k] = 'E'
            || (s.[!k] = '-' && !k > start && (s.[!k - 1] = 'e' || s.[!k - 1] = 'E'))
            || (s.[!k] = '+' && !k > start && (s.[!k - 1] = 'e' || s.[!k - 1] = 'E')))
      do
        incr k
      done;
      let text = String.sub s start (!k - start) in
      match float_of_string_opt text with
      | Some v -> toks := Num v :: !toks
      | None -> fail "bad number %S in %S" text s
    end
    else if (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || ch = '_'
    then begin
      let start = !k in
      while
        !k < n
        && ((s.[!k] >= 'a' && s.[!k] <= 'z')
            || (s.[!k] >= 'A' && s.[!k] <= 'Z')
            || (s.[!k] >= '0' && s.[!k] <= '9')
            || s.[!k] = '_')
      do
        incr k
      done;
      let name = String.sub s start (!k - start) in
      if String.lowercase_ascii name = "pi" then toks := Pi :: !toks
      else toks := Ident name :: !toks
    end
    else fail "unexpected character %C in expression %S" ch s
  done;
  List.rev !toks

let parse_expr ?(env = fun name -> fail "unknown parameter %S" name) s =
  let toks = ref (lex_expr s) in
  let peek () = match !toks with [] -> None | t :: _ -> Some t in
  let advance () = match !toks with [] -> () | _ :: rest -> toks := rest in
  let rec expr () =
    let v = ref (term ()) in
    let rec loop () =
      match peek () with
      | Some Plus ->
        advance ();
        v := !v +. term ();
        loop ()
      | Some Minus ->
        advance ();
        v := !v -. term ();
        loop ()
      | _ -> ()
    in
    loop ();
    !v
  and term () =
    let v = ref (factor ()) in
    let rec loop () =
      match peek () with
      | Some Star ->
        advance ();
        v := !v *. factor ();
        loop ()
      | Some Slash ->
        advance ();
        let d = factor () in
        if d = 0. then fail "division by zero in %S" s;
        v := !v /. d;
        loop ()
      | _ -> ()
    in
    loop ();
    !v
  and factor () =
    match peek () with
    | Some Minus ->
      advance ();
      -.factor ()
    | Some Plus ->
      advance ();
      factor ()
    | Some (Num v) ->
      advance ();
      v
    | Some Pi ->
      advance ();
      Float.pi
    | Some (Ident name) ->
      advance ();
      (env name : float)
    | Some Lpar ->
      advance ();
      let v = expr () in
      (match peek () with
       | Some Rpar -> advance ()
       | _ -> fail "missing ) in %S" s);
      v
    | _ -> fail "malformed expression %S" s
  in
  let v = expr () in
  if !toks <> [] then fail "trailing tokens in expression %S" s;
  v

(* --- gate definitions --- *)

type gate_def = {
  def_params : string list;
  def_formals : string list;
  def_body : string list;  (** raw statements *)
}

(* extract `gate name(p, ...) q, ... { body }` blocks from the
   comment-stripped source; returns (definitions, remaining text) *)
let extract_gate_defs text =
  let defs = Hashtbl.create 8 in
  let buf = Buffer.create (String.length text) in
  let n = String.length text in
  let rec scan k =
    if k >= n then ()
    else if
      k + 5 <= n
      && String.sub text k 5 = "gate "
      && (k = 0 || text.[k - 1] = ' ' || text.[k - 1] = ';' || text.[k - 1] = '\n')
    then begin
      let lbrace =
        match String.index_from_opt text k '{' with
        | Some p -> p
        | None -> fail "gate definition without a body near %S" (String.sub text k (min 40 (n - k)))
      in
      let rbrace =
        match String.index_from_opt text lbrace '}' with
        | Some p -> p
        | None -> fail "unterminated gate body"
      in
      let header = String.trim (String.sub text (k + 5) (lbrace - k - 5)) in
      let body_text = String.sub text (lbrace + 1) (rbrace - lbrace - 1) in
      let name, params, formals_text =
        match String.index_opt header '(' with
        | Some lp ->
          let rp =
            try String.index_from header lp ')'
            with Not_found -> fail "missing ) in gate header %S" header
          in
          ( String.trim (String.sub header 0 lp),
            String.sub header (lp + 1) (rp - lp - 1)
            |> String.split_on_char ','
            |> List.map String.trim
            |> List.filter (fun p -> p <> ""),
            String.trim (String.sub header (rp + 1) (String.length header - rp - 1)) )
        | None ->
          (match String.index_opt header ' ' with
           | None -> fail "gate header %S has no qubit arguments" header
           | Some sp ->
             ( String.sub header 0 sp,
               [],
               String.trim
                 (String.sub header (sp + 1) (String.length header - sp - 1)) ))
      in
      let formals =
        formals_text |> String.split_on_char ',' |> List.map String.trim
        |> List.filter (fun q -> q <> "")
      in
      if formals = [] then fail "gate %S has no qubit arguments" name;
      let body =
        body_text |> String.split_on_char ';' |> List.map String.trim
        |> List.filter (fun st -> st <> "")
      in
      Hashtbl.replace defs name { def_params = params; def_formals = formals; def_body = body };
      scan (rbrace + 1)
    end
    else begin
      Buffer.add_char buf text.[k];
      scan (k + 1)
    end
  in
  scan 0;
  (defs, Buffer.contents buf)

(* --- statement parsing --- *)

let strip_comment line =
  match String.index_opt line '/' with
  | Some k when k + 1 < String.length line && line.[k + 1] = '/' ->
    String.sub line 0 k
  | _ -> line

let split_statements text =
  text
  |> String.split_on_char '\n'
  |> List.map strip_comment
  |> String.concat " "
  |> String.split_on_char ';'
  |> List.map String.trim
  |> List.filter (fun s -> s <> "")

(* "name(args) q[0],q[1]" -> (name, Some args, operand string) *)
let split_application stmt =
  match String.index_opt stmt '(' with
  | Some lp when not (String.contains (String.sub stmt 0 lp) ' ') ->
    let rp =
      try String.rindex stmt ')'
      with Not_found -> fail "missing ) in %S" stmt
    in
    let name = String.trim (String.sub stmt 0 lp) in
    let args = String.sub stmt (lp + 1) (rp - lp - 1) in
    let operands = String.trim (String.sub stmt (rp + 1) (String.length stmt - rp - 1)) in
    (name, Some args, operands)
  | _ ->
    (match String.index_opt stmt ' ' with
     | None -> (stmt, None, "")
     | Some sp ->
       ( String.sub stmt 0 sp,
         None,
         String.trim (String.sub stmt (sp + 1) (String.length stmt - sp - 1)) ))

let parse_qubit reg s =
  let s = String.trim s in
  match String.index_opt s '[' with
  | Some lb when String.length s > 0 && s.[String.length s - 1] = ']' ->
    let name = String.sub s 0 lb in
    if name <> reg then fail "unknown register %S (declared %S)" name reg;
    let idx = String.sub s (lb + 1) (String.length s - lb - 2) in
    (match int_of_string_opt (String.trim idx) with
     | Some v -> v
     | None -> fail "bad qubit index in %S" s)
  | _ -> fail "bad qubit operand %S" s

let of_string text =
  let stripped =
    text |> String.split_on_char '\n' |> List.map strip_comment
    |> String.concat "\n"
  in
  let defs, remaining = extract_gate_defs stripped in
  let statements = split_statements remaining in
  let reg = ref None in
  let size = ref 0 in
  let gates = ref [] in
  let get_reg stmt =
    match !reg with
    | Some r -> r
    | None -> fail "gate before qreg declaration: %S" stmt
  in
  let rec emit depth ~param_env ~qubit_env stmt =
    if depth > 64 then fail "gate definitions nested deeper than 64";
    let name, args, operands = split_application stmt in
    let angle1 () =
      match args with
      | Some a -> parse_expr ~env:param_env a
      | None -> fail "missing angle in %S" stmt
    in
    let qs =
      if operands = "" then []
      else operands |> String.split_on_char ',' |> List.map qubit_env
    in
    match (Hashtbl.find_opt defs name : gate_def option) with
    | Some def ->
      let arg_values =
        match args with
        | None -> []
        | Some a ->
          a |> String.split_on_char ',' |> List.map String.trim
          |> List.filter (fun x -> x <> "")
          |> List.map (parse_expr ~env:param_env)
      in
      if List.length arg_values <> List.length def.def_params then
        fail "gate %S expects %d parameters, got %d" name
          (List.length def.def_params)
          (List.length arg_values);
      if List.length qs <> List.length def.def_formals then
        fail "gate %S expects %d qubits, got %d" name
          (List.length def.def_formals)
          (List.length qs);
      let inner_params p =
        match List.combine def.def_params arg_values |> List.assoc_opt p with
        | Some v -> v
        | None -> fail "unknown parameter %S in gate %S" p name
      in
      let inner_qubits q =
        let q = String.trim q in
        match List.combine def.def_formals qs |> List.assoc_opt q with
        | Some v -> v
        | None -> fail "unknown qubit argument %S in gate %S" q name
      in
      List.iter
        (emit (depth + 1) ~param_env:inner_params ~qubit_env:inner_qubits)
        def.def_body
    | None ->
      let g =
        match (name, qs) with
        | "id", [ q ] -> Gate.id q
        | "x", [ q ] -> Gate.x q
        | "y", [ q ] -> Gate.y q
        | "z", [ q ] -> Gate.z q
        | "h", [ q ] -> Gate.h q
        | "s", [ q ] -> Gate.s q
        | "sdg", [ q ] -> Gate.sdg q
        | "t", [ q ] -> Gate.t q
        | "tdg", [ q ] -> Gate.tdg q
        | "rx", [ q ] -> Gate.rx (angle1 ()) q
        | "ry", [ q ] -> Gate.ry (angle1 ()) q
        | "rz", [ q ] -> Gate.rz (angle1 ()) q
        | ("p" | "u1"), [ q ] -> Gate.phase (angle1 ()) q
        | ("cx" | "CX"), [ a; b ] -> Gate.cnot a b
        | "cz", [ a; b ] -> Gate.cz a b
        | ("cp" | "cu1"), [ a; b ] -> Gate.cphase (angle1 ()) a b
        | "swap", [ a; b ] -> Gate.swap a b
        | "iswap", [ a; b ] -> Gate.iswap a b
        | "rxx", [ a; b ] -> Gate.rxx (angle1 ()) a b
        | "ryy", [ a; b ] -> Gate.ryy (angle1 ()) a b
        | "rzz", [ a; b ] -> Gate.rzz (angle1 ()) a b
        | "ccx", [ a; b; c ] -> Gate.ccx a b c
        | _ -> fail "unsupported statement %S" stmt
      in
      gates := g :: !gates
  in
  List.iter
    (fun stmt ->
      let name, _args, operands = split_application stmt in
      match name with
      | "OPENQASM" | "include" | "creg" | "barrier" | "measure" -> ()
      | "qreg" ->
        (match String.index_opt operands '[' with
         | Some lb when operands.[String.length operands - 1] = ']' ->
           if !reg <> None then fail "multiple qreg declarations";
           reg := Some (String.sub operands 0 lb);
           (match
              int_of_string_opt
                (String.sub operands (lb + 1) (String.length operands - lb - 2))
            with
            | Some n -> size := n
            | None -> fail "bad qreg size in %S" stmt)
         | _ -> fail "bad qreg declaration %S" stmt)
      | _ ->
        let r = get_reg stmt in
        emit 0
          ~param_env:(fun p -> fail "unknown parameter %S" p)
          ~qubit_env:(parse_qubit r)
          stmt)
    statements;
  Circuit.make !size (List.rev !gates)


let to_string c =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";
  Buffer.add_string buf
    (Printf.sprintf "qreg q[%d];\n" (Circuit.n_qubits c));
  List.iter
    (fun g ->
      let operands =
        String.concat ","
          (List.map (Printf.sprintf "q[%d]") (Gate.qubits g))
      in
      let head =
        match Gate.params g with
        | [] -> Gate.name g
        | ps ->
          Printf.sprintf "%s(%s)" (Gate.name g)
            (String.concat "," (List.map (Printf.sprintf "%.17g") ps))
      in
      Buffer.add_string buf (Printf.sprintf "%s %s;\n" head operands))
    (Circuit.gates c);
  Buffer.contents buf

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  of_string text

let write_file path c =
  let oc = open_out path in
  output_string oc (to_string c);
  close_out oc
