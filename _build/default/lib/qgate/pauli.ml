type op = Pi | Px | Py | Pz

type t = { coeff : float; ops : op array }

let make coeff ops = { coeff; ops }

let of_string coeff s =
  let op_of_char = function
    | 'I' | 'i' -> Pi
    | 'X' | 'x' -> Px
    | 'Y' | 'y' -> Py
    | 'Z' | 'z' -> Pz
    | ch -> invalid_arg (Printf.sprintf "Pauli.of_string: bad character %c" ch)
  in
  { coeff; ops = Array.init (String.length s) (fun k -> op_of_char s.[k]) }

let char_of_op = function Pi -> 'I' | Px -> 'X' | Py -> 'Y' | Pz -> 'Z'

let to_string p =
  Printf.sprintf "%g*%s" p.coeff
    (String.init (Array.length p.ops) (fun k -> char_of_op p.ops.(k)))

let n_qubits p = Array.length p.ops

let support p =
  let acc = ref [] in
  Array.iteri (fun q op -> if op <> Pi then acc := q :: !acc) p.ops;
  List.rev !acc

let weight p = List.length (support p)

let commutes a b =
  if n_qubits a <> n_qubits b then
    invalid_arg "Pauli.commutes: register size mismatch";
  let anticommuting = ref 0 in
  Array.iteri
    (fun q oa ->
      let ob = b.ops.(q) in
      if oa <> Pi && ob <> Pi && oa <> ob then incr anticommuting)
    a.ops;
  !anticommuting mod 2 = 0

let matrix p =
  let single = function
    | Pi -> Qnum.Cmat.identity 2
    | Px -> Unitary.pauli_x
    | Py -> Unitary.pauli_y
    | Pz -> Unitary.pauli_z
  in
  Qnum.Cmat.scale_real p.coeff
    (Qnum.Cmat.kron_list (Array.to_list (Array.map single p.ops)))

let rotation_circuit ~theta p =
  match support p with
  | [] -> []
  | supp ->
    let angle = theta *. p.coeff in
    let into_z q = function
      | Px -> [ Gate.h q ]
      | Py -> [ Gate.rx (Float.pi /. 2.) q ]
      | Pz | Pi -> []
    in
    let out_of_z q = function
      | Px -> [ Gate.h q ]
      | Py -> [ Gate.rx (-.(Float.pi /. 2.)) q ]
      | Pz | Pi -> []
    in
    let pre = List.concat_map (fun q -> into_z q p.ops.(q)) supp in
    let post = List.concat_map (fun q -> out_of_z q p.ops.(q)) supp in
    let last = List.nth supp (List.length supp - 1) in
    let rec ladder = function
      | [] | [ _ ] -> []
      | q :: (r :: _ as rest) -> Gate.cnot q r :: ladder rest
    in
    let up = ladder supp in
    let down = List.rev up in
    pre @ up @ [ Gate.rz angle last ] @ down @ post

let op_mul a b =
  (* returns (phase, op) with σa·σb = phase·σ *)
  match (a, b) with
  | Pi, o | o, Pi -> (Qnum.Cx.one, o)
  | Px, Px | Py, Py | Pz, Pz -> (Qnum.Cx.one, Pi)
  | Px, Py -> (Qnum.Cx.i, Pz)
  | Py, Px -> (Qnum.Cx.neg Qnum.Cx.i, Pz)
  | Py, Pz -> (Qnum.Cx.i, Px)
  | Pz, Py -> (Qnum.Cx.neg Qnum.Cx.i, Px)
  | Pz, Px -> (Qnum.Cx.i, Py)
  | Px, Pz -> (Qnum.Cx.neg Qnum.Cx.i, Py)

let mul_phase a b =
  if n_qubits a <> n_qubits b then
    invalid_arg "Pauli.mul_phase: register size mismatch";
  let phase = ref Qnum.Cx.one in
  let ops =
    Array.init (n_qubits a) (fun q ->
        let ph, o = op_mul a.ops.(q) b.ops.(q) in
        phase := Qnum.Cx.mul !phase ph;
        o)
  in
  (!phase, { coeff = a.coeff *. b.coeff; ops })
