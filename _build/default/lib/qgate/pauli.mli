(** Pauli strings and their rotation circuits.

    Jordan–Wigner-transformed fermionic operators (the UCCSD benchmark) and
    Ising Hamiltonians are sums of Pauli strings; each term exp(-iθ/2·P) is
    realized by the textbook basis-change + CNOT-ladder + Rz construction —
    exactly the CNOT–Rz–CNOT-style diagonal chains the paper's aggregation
    targets (§6.4). *)

type op = Pi | Px | Py | Pz

type t = { coeff : float; ops : op array }
(** [coeff · op₀ ⊗ op₁ ⊗ …]; [ops] has one entry per register qubit. *)

val make : float -> op array -> t

val of_string : float -> string -> t
(** [of_string c "IXYZ"] — one character per qubit, from qubit 0. Raises
    [Invalid_argument] on other characters. *)

val to_string : t -> string
val n_qubits : t -> int
val support : t -> int list
(** Qubits with a non-identity factor, ascending. *)

val weight : t -> int
(** Size of the support. *)

val commutes : t -> t -> bool
(** Pauli strings commute iff they anticommute on an even number of
    qubits. *)

val matrix : t -> Qnum.Cmat.t
(** Dense 2ⁿ matrix [coeff · ⊗ ops] (small n only). *)

val rotation_circuit : theta:float -> t -> Gate.t list
(** Gates implementing exp(-i·(θ/2)·coeff·P): basis changes into Z, a CNOT
    ladder onto the last support qubit, Rz(θ·coeff), and the unwinding.
    The empty-support string yields no gates (global phase). *)

val mul_phase : t -> t -> Qnum.Cx.t * t
(** Product of two strings: (phase, string) with
    P₁·P₂ = phase·coeff·(result ops). *)
