(** Gate decomposition rules.

    The standard-ISA lowering used by the gate-based baseline (paper Fig. 5
    left: "physical gate decomposition"), plus the iSWAP-architecture
    identities of Schuch–Siewert [48] used by the hand-optimization
    baseline. Every rule is semantics-preserving up to global phase and is
    verified against dense unitaries in the test suite. *)

val isa_kind : Gate.kind -> bool
(** Membership in the standard logical ISA the paper compiles from:
    1-qubit gates, CNOT and SWAP. *)

val lower_gate : Gate.t -> Gate.t list
(** One lowering step for a non-ISA gate ([Ccx], [Cz], [Cphase], [Rzz],
    [Rxx], [Ryy], [Iswap], [Sqrt_iswap]); ISA gates return themselves. *)

val to_isa : Circuit.t -> Circuit.t
(** Fixpoint of {!lower_gate} over the whole circuit. *)

val ccx : int -> int -> int -> Gate.t list
(** Standard 6-CNOT Toffoli decomposition, [ccx c1 c2 target]. *)

val swap_to_cnots : int -> int -> Gate.t list
val cz_to_std : int -> int -> Gate.t list
val cphase_to_std : float -> int -> int -> Gate.t list
val rzz_to_std : float -> int -> int -> Gate.t list
(** The CNOT–Rz–CNOT realization of a ZZ rotation — the diagonal block at
    the heart of the paper's QAOA/UCCSD benchmarks. *)

val rxx_to_std : float -> int -> int -> Gate.t list
val ryy_to_std : float -> int -> int -> Gate.t list

val iswap_to_interactions : int -> int -> Gate.t list
(** iSWAP = Rxx(-π/2)·Ryy(-π/2) (commuting factors). *)

val cnot_via_iswap : int -> int -> Gate.t list
(** CNOT realized with two iSWAPs and single-qubit rotations — the
    physical-gate decomposition on XY-interaction superconducting
    hardware [48]. *)
