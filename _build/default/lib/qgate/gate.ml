type kind =
  | I
  | X
  | Y
  | Z
  | H
  | S
  | Sdg
  | T
  | Tdg
  | Rx of float
  | Ry of float
  | Rz of float
  | Phase of float
  | Cnot
  | Cz
  | Cphase of float
  | Swap
  | Iswap
  | Sqrt_iswap
  | Rxx of float
  | Ryy of float
  | Rzz of float
  | Ccx

type t = { kind : kind; qubits : int list }

let kind_arity = function
  | I | X | Y | Z | H | S | Sdg | T | Tdg | Rx _ | Ry _ | Rz _ | Phase _ -> 1
  | Cnot | Cz | Cphase _ | Swap | Iswap | Sqrt_iswap | Rxx _ | Ryy _ | Rzz _ ->
    2
  | Ccx -> 3

let arity g = kind_arity g.kind

let rec has_dup = function
  | [] -> false
  | q :: rest -> List.mem q rest || has_dup rest

let make kind qubits =
  if List.length qubits <> kind_arity kind then
    invalid_arg "Gate.make: arity mismatch";
  if has_dup qubits then invalid_arg "Gate.make: repeated qubit";
  if List.exists (fun q -> q < 0) qubits then
    invalid_arg "Gate.make: negative qubit";
  { kind; qubits }

let id q = make I [ q ]
let x q = make X [ q ]
let y q = make Y [ q ]
let z q = make Z [ q ]
let h q = make H [ q ]
let s q = make S [ q ]
let sdg q = make Sdg [ q ]
let t q = make T [ q ]
let tdg q = make Tdg [ q ]
let rx theta q = make (Rx theta) [ q ]
let ry theta q = make (Ry theta) [ q ]
let rz theta q = make (Rz theta) [ q ]
let phase theta q = make (Phase theta) [ q ]
let cnot c tgt = make Cnot [ c; tgt ]
let cz a b = make Cz [ a; b ]
let cphase theta a b = make (Cphase theta) [ a; b ]
let swap a b = make Swap [ a; b ]
let iswap a b = make Iswap [ a; b ]
let sqrt_iswap a b = make Sqrt_iswap [ a; b ]
let rxx theta a b = make (Rxx theta) [ a; b ]
let ryy theta a b = make (Ryy theta) [ a; b ]
let rzz theta a b = make (Rzz theta) [ a; b ]
let ccx c1 c2 tgt = make Ccx [ c1; c2; tgt ]
let qubits g = g.qubits

let name g =
  match g.kind with
  | I -> "id"
  | X -> "x"
  | Y -> "y"
  | Z -> "z"
  | H -> "h"
  | S -> "s"
  | Sdg -> "sdg"
  | T -> "t"
  | Tdg -> "tdg"
  | Rx _ -> "rx"
  | Ry _ -> "ry"
  | Rz _ -> "rz"
  | Phase _ -> "p"
  | Cnot -> "cx"
  | Cz -> "cz"
  | Cphase _ -> "cp"
  | Swap -> "swap"
  | Iswap -> "iswap"
  | Sqrt_iswap -> "siswap"
  | Rxx _ -> "rxx"
  | Ryy _ -> "ryy"
  | Rzz _ -> "rzz"
  | Ccx -> "ccx"

let params g =
  match g.kind with
  | Rx a | Ry a | Rz a | Phase a | Cphase a | Rxx a | Ryy a | Rzz a -> [ a ]
  | I | X | Y | Z | H | S | Sdg | T | Tdg | Cnot | Cz | Swap | Iswap
  | Sqrt_iswap | Ccx ->
    []

let adjoint g =
  let kind =
    match g.kind with
    | I -> I
    | X -> X
    | Y -> Y
    | Z -> Z
    | H -> H
    | S -> Sdg
    | Sdg -> S
    | T -> Tdg
    | Tdg -> T
    | Rx a -> Rx (-.a)
    | Ry a -> Ry (-.a)
    | Rz a -> Rz (-.a)
    | Phase a -> Phase (-.a)
    | Cnot -> Cnot
    | Cz -> Cz
    | Cphase a -> Cphase (-.a)
    | Swap -> Swap
    | Iswap | Sqrt_iswap ->
      (* iSWAP† = Rxx(π/2)·Ryy(π/2) is not a single vocabulary gate;
         callers lower the iswap family via Decompose first *)
      invalid_arg "Gate.adjoint: iswap family has no in-vocabulary adjoint"
    | Rxx a -> Rxx (-.a)
    | Ryy a -> Ryy (-.a)
    | Rzz a -> Rzz (-.a)
    | Ccx -> Ccx
  in
  { g with kind }

let is_diagonal_kind = function
  | I | Z | S | Sdg | T | Tdg | Rz _ | Phase _ | Cz | Cphase _ | Rzz _ -> true
  | X | Y | H | Rx _ | Ry _ | Cnot | Swap | Iswap | Sqrt_iswap | Rxx _
  | Ryy _ | Ccx ->
    false

let is_symmetric_kind = function
  | Cz | Cphase _ | Swap | Iswap | Sqrt_iswap | Rxx _ | Ryy _ | Rzz _ -> true
  | I | X | Y | Z | H | S | Sdg | T | Tdg | Rx _ | Ry _ | Rz _ | Phase _
  | Cnot | Ccx ->
    false

let acts_on g q = List.mem q g.qubits
let common_qubits a b = List.filter (fun q -> acts_on b q) a.qubits
let shares_qubit a b = common_qubits a b <> []

let map_qubits f g =
  let qubits = List.map f g.qubits in
  if has_dup qubits then invalid_arg "Gate.map_qubits: renaming collapses qubits";
  { g with qubits }

let equal a b = a.kind = b.kind && a.qubits = b.qubits
let compare = Stdlib.compare

let pp ppf g =
  (match params g with
   | [] -> Format.fprintf ppf "%s" (name g)
   | ps ->
     Format.fprintf ppf "%s(%s)" (name g)
       (String.concat "," (List.map (Printf.sprintf "%g") ps)));
  Format.fprintf ppf " %s"
    (String.concat "," (List.map (Printf.sprintf "q%d") g.qubits))

let to_string g = Format.asprintf "%a" pp g
