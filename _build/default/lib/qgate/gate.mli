(** Logical quantum gates.

    The gate vocabulary of the standard quantum ISA the paper compiles from
    (1- and 2-qubit gates, plus Toffoli for reversible-logic benchmarks,
    which the frontend lowers before scheduling), together with the
    superconducting-native iSWAP family.

    Angle conventions:
    - [Rx]/[Ry]/[Rz] θ are Bloch-sphere rotations exp(-iθ/2·σ).
    - [Phase] θ is diag(1, e^{iθ}); [Cphase] θ is diag(1,1,1,e^{iθ}).
    - [Rzz]/[Rxx]/[Ryy] θ are two-qubit rotations exp(-iθ/2·σ⊗σ);
      CNOT·Rz(θ)·CNOT on (c,t) equals Rzz θ up to nothing — exactly the
      diagonal blocks the paper's commutativity detection targets.
    - For controlled gates, [qubits] lists controls first, target last. *)

type kind =
  | I
  | X
  | Y
  | Z
  | H
  | S
  | Sdg
  | T
  | Tdg
  | Rx of float
  | Ry of float
  | Rz of float
  | Phase of float
  | Cnot
  | Cz
  | Cphase of float
  | Swap
  | Iswap
  | Sqrt_iswap
  | Rxx of float
  | Ryy of float
  | Rzz of float
  | Ccx

type t = { kind : kind; qubits : int list }

val kind_arity : kind -> int
val arity : t -> int

val make : kind -> int list -> t
(** Raises [Invalid_argument] when the qubit count does not match the
    kind's arity, or when qubits repeat. *)

(** {1 Constructors} *)

val id : int -> t
val x : int -> t
val y : int -> t
val z : int -> t
val h : int -> t
val s : int -> t
val sdg : int -> t
val t : int -> t
val tdg : int -> t
val rx : float -> int -> t
val ry : float -> int -> t
val rz : float -> int -> t
val phase : float -> int -> t
val cnot : int -> int -> t
(** [cnot control target]. *)

val cz : int -> int -> t
val cphase : float -> int -> int -> t
val swap : int -> int -> t
val iswap : int -> int -> t
val sqrt_iswap : int -> int -> t
val rxx : float -> int -> int -> t
val ryy : float -> int -> int -> t
val rzz : float -> int -> int -> t
val ccx : int -> int -> int -> t
(** [ccx c1 c2 target] — Toffoli. *)

(** {1 Accessors and properties} *)

val qubits : t -> int list
val name : t -> string
(** Lower-case mnemonic, e.g. ["cx"], ["rz"]. *)

val params : t -> float list

val adjoint : t -> t
(** Inverse gate. Raises [Invalid_argument] for [Iswap]/[Sqrt_iswap], whose
    inverse is not a single vocabulary gate (lower them via {!Decompose}
    first). *)

val is_diagonal_kind : kind -> bool
(** Diagonal in the computational basis (Z/S/T/Rz/Phase/Cz/Cphase/Rzz). *)

val is_symmetric_kind : kind -> bool
(** Invariant under exchanging its two qubits (Swap, Iswap, Cz, …). *)

val acts_on : t -> int -> bool
val shares_qubit : t -> t -> bool
val common_qubits : t -> t -> int list

val map_qubits : (int -> int) -> t -> t
(** Raises [Invalid_argument] if the renaming collapses two qubits. *)

val equal : t -> t -> bool
(** Structural equality with exact float comparison on angles. *)

val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
