(** Quantum circuits: an ordered gate list over a fixed qubit register. *)

type t = { n_qubits : int; gates : Gate.t list }

val make : int -> Gate.t list -> t
(** Raises [Invalid_argument] when a gate touches a qubit outside
    [0 .. n_qubits-1]. *)

val empty : int -> t
val append : t -> Gate.t -> t
val concat : t -> t -> t
(** Sequential composition; qubit counts must agree. *)

val n_gates : t -> int
val n_qubits : t -> int
val gates : t -> Gate.t list

val count : (Gate.t -> bool) -> t -> int
val two_qubit_count : t -> int

val depth : t -> int
(** Unit-latency circuit depth: the longest chain of gates sharing qubits
    (the classic gate-count depth, used for program characteristics). *)

val critical_path_time : (Gate.t -> float) -> t -> float
(** Depth under a per-gate latency function: an ASAP schedule's makespan
    when every gate occupies exactly its own qubits. *)

val used_qubits : t -> int list
val interaction_graph : t -> Qgraph.Graph.t
(** Weighted qubit-interaction graph: an edge per 2-qubit interaction,
    weight = number of such gates (3-qubit gates contribute all pairs). *)

val map_qubits : (int -> int) -> t -> t
(** Relabels qubits; the register size is unchanged. Raises if a gate's
    qubits collapse or leave the register. *)

val adjoint : t -> t
(** Reverse circuit of adjoint gates. Raises where {!Gate.adjoint} does. *)

val unitary : t -> Qnum.Cmat.t
(** Full 2ⁿ unitary. Raises [Invalid_argument] for [n_qubits > 12]. *)

val equal_semantics : ?eps:float -> t -> t -> bool
(** Unitary equality up to global phase (small circuits only). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
