lib/qgate/gate.mli: Format
