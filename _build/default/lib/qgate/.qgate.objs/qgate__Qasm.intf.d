lib/qgate/qasm.mli: Circuit
