lib/qgate/qasm.ml: Buffer Circuit Float Gate Hashtbl List Printf String
