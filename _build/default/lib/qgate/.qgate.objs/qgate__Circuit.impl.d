lib/qgate/circuit.ml: Array Float Format Gate List Printf Qgraph Qnum Unitary
