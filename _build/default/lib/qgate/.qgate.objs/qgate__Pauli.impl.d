lib/qgate/pauli.ml: Array Float Gate List Printf Qnum String Unitary
