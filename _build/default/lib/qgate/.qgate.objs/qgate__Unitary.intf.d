lib/qgate/unitary.mli: Gate Qnum
