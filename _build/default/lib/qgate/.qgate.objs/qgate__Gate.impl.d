lib/qgate/gate.ml: Format List Printf Stdlib String
