lib/qgate/decompose.ml: Circuit Float Gate List
