lib/qgate/unitary.ml: Cmat Cx Float Gate Hashtbl List Qnum
