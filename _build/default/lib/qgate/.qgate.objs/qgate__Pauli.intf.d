lib/qgate/pauli.mli: Gate Qnum
