lib/qgate/circuit.mli: Format Gate Qgraph Qnum
