lib/qgate/decompose.mli: Circuit Gate
