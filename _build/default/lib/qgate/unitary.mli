(** Gate unitaries as dense matrices.

    Basis convention follows {!Qnum.Cmat}: qubit 0 is the most significant
    index bit. For a gate, local qubit order is the order of
    [Gate.qubits]. *)

val of_kind : Gate.kind -> Qnum.Cmat.t
(** The gate's matrix on its own 2^arity-dimensional space. *)

val of_gate : n_qubits:int -> Gate.t -> Qnum.Cmat.t
(** The gate lifted to the full 2ⁿ space. *)

val of_gates : n_qubits:int -> Gate.t list -> Qnum.Cmat.t
(** Product of lifted gates applied in list (time) order: for gate list
    [g1; g2; ...] the result is ... · U(g2) · U(g1). *)

val on_support : Gate.t list -> int list * Qnum.Cmat.t
(** [on_support gates] computes the joint unitary of [gates] on the sorted
    union of their supports (relabelled locally); returns
    (support, unitary). Raises [Invalid_argument] on the empty list. *)

(** {1 Named constant matrices} *)

val pauli_x : Qnum.Cmat.t
val pauli_y : Qnum.Cmat.t
val pauli_z : Qnum.Cmat.t
val hadamard : Qnum.Cmat.t
