let half_pi = Float.pi /. 2.

let isa_kind = function
  | Gate.I | Gate.X | Gate.Y | Gate.Z | Gate.H | Gate.S | Gate.Sdg | Gate.T
  | Gate.Tdg | Gate.Rx _ | Gate.Ry _ | Gate.Rz _ | Gate.Phase _ | Gate.Cnot
  | Gate.Swap ->
    true
  | Gate.Cz | Gate.Cphase _ | Gate.Iswap | Gate.Sqrt_iswap | Gate.Rxx _
  | Gate.Ryy _ | Gate.Rzz _ | Gate.Ccx ->
    false

let ccx a b t =
  [ Gate.h t;
    Gate.cnot b t;
    Gate.tdg t;
    Gate.cnot a t;
    Gate.t t;
    Gate.cnot b t;
    Gate.tdg t;
    Gate.cnot a t;
    Gate.t b;
    Gate.t t;
    Gate.h t;
    Gate.cnot a b;
    Gate.t a;
    Gate.tdg b;
    Gate.cnot a b ]

let swap_to_cnots a b = [ Gate.cnot a b; Gate.cnot b a; Gate.cnot a b ]
let cz_to_std a b = [ Gate.h b; Gate.cnot a b; Gate.h b ]

let cphase_to_std theta a b =
  [ Gate.phase (theta /. 2.) a;
    Gate.cnot a b;
    Gate.phase (-.theta /. 2.) b;
    Gate.cnot a b;
    Gate.phase (theta /. 2.) b ]

let rzz_to_std theta a b = [ Gate.cnot a b; Gate.rz theta b; Gate.cnot a b ]

let rxx_to_std theta a b =
  [ Gate.h a; Gate.h b ] @ rzz_to_std theta a b @ [ Gate.h a; Gate.h b ]

let ryy_to_std theta a b =
  [ Gate.rx half_pi a; Gate.rx half_pi b ]
  @ rzz_to_std theta a b
  @ [ Gate.rx (-.half_pi) a; Gate.rx (-.half_pi) b ]

let iswap_to_interactions a b = [ Gate.rxx (-.half_pi) a b; Gate.ryy (-.half_pi) a b ]

(* CNOT from two iSWAPs and local rotations (Schuch–Siewert form);
   verified against the dense CNOT unitary in the test suite *)
let cnot_via_iswap c t =
  [ Gate.rz (-.half_pi) c;
    Gate.rx half_pi t;
    Gate.rz half_pi t;
    Gate.iswap c t;
    Gate.rx half_pi c;
    Gate.iswap c t;
    Gate.rz half_pi t ]

let lower_rxx_ryy g =
  match (g.Gate.kind, Gate.qubits g) with
  | Gate.Rxx theta, [ a; b ] -> rxx_to_std theta a b
  | Gate.Ryy theta, [ a; b ] -> ryy_to_std theta a b
  | _ -> [ g ]

let lower_gate g =
  match (g.Gate.kind, Gate.qubits g) with
  | Gate.Ccx, [ a; b; t ] -> ccx a b t
  | Gate.Cz, [ a; b ] -> cz_to_std a b
  | Gate.Cphase theta, [ a; b ] -> cphase_to_std theta a b
  | Gate.Rzz theta, [ a; b ] -> rzz_to_std theta a b
  | Gate.Rxx theta, [ a; b ] -> rxx_to_std theta a b
  | Gate.Ryy theta, [ a; b ] -> ryy_to_std theta a b
  | Gate.Iswap, [ a; b ] ->
    List.concat_map lower_rxx_ryy (iswap_to_interactions a b)
  | Gate.Sqrt_iswap, [ a; b ] ->
    List.concat_map lower_rxx_ryy
      [ Gate.rxx (-.(Float.pi /. 4.)) a b; Gate.ryy (-.(Float.pi /. 4.)) a b ]
  | _ -> [ g ]

let to_isa circuit =
  let rec fix gates =
    let lowered = List.concat_map lower_gate gates in
    if List.for_all (fun g -> isa_kind g.Gate.kind) lowered then lowered
    else fix lowered
  in
  Circuit.make (Circuit.n_qubits circuit) (fix (Circuit.gates circuit))
