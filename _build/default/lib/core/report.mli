(** Result formatting and aggregate statistics for the experiment
    harness. *)

val geometric_mean : float list -> float
(** Raises [Invalid_argument] on an empty list or non-positive entries. *)

val normalized_latency : baseline:Compiler.result -> Compiler.result -> float
(** this latency / baseline latency (the y-axis of Fig. 9). *)

val print_speedup_table :
  header:string ->
  rows:(string * (Strategy.t * Compiler.result) list) list ->
  unit
(** One row per benchmark: normalized latency per strategy (ISA = 1.0)
    plus a geometric-mean footer, matching Fig. 9's layout. *)

val print_kv : (string * string) list -> unit
(** Aligned key/value lines. *)
