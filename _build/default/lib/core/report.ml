let geometric_mean values =
  match values with
  | [] -> invalid_arg "Report.geometric_mean: empty"
  | _ ->
    if List.exists (fun v -> v <= 0.) values then
      invalid_arg "Report.geometric_mean: non-positive entry";
    let log_sum = List.fold_left (fun acc v -> acc +. Float.log v) 0. values in
    Float.exp (log_sum /. float_of_int (List.length values))

let normalized_latency ~baseline result =
  result.Compiler.latency /. baseline.Compiler.latency

let print_speedup_table ~header ~rows =
  Printf.printf "%s\n" header;
  let strategies = Strategy.all in
  Printf.printf "%-16s" "benchmark";
  List.iter
    (fun s -> Printf.printf " %15s" (Strategy.to_string s))
    strategies;
  Printf.printf "\n";
  let per_strategy = Hashtbl.create 8 in
  List.iter
    (fun (name, results) ->
      Printf.printf "%-16s" name;
      let baseline =
        match List.assoc_opt Strategy.Isa results with
        | Some r -> r
        | None -> invalid_arg "Report: missing ISA baseline"
      in
      List.iter
        (fun s ->
          match List.assoc_opt s results with
          | None -> Printf.printf " %15s" "-"
          | Some r ->
            let norm = normalized_latency ~baseline r in
            let prev =
              Option.value ~default:[] (Hashtbl.find_opt per_strategy s)
            in
            Hashtbl.replace per_strategy s (norm :: prev);
            Printf.printf " %15.3f" norm)
        strategies;
      Printf.printf "\n")
    rows;
  Printf.printf "%-16s" "geomean-speedup";
  List.iter
    (fun s ->
      match Hashtbl.find_opt per_strategy s with
      | None | Some [] -> Printf.printf " %15s" "-"
      | Some norms -> Printf.printf " %15.3f" (1. /. geometric_mean norms))
    strategies;
  Printf.printf "\n%!"

let print_kv pairs =
  let width =
    List.fold_left (fun acc (k, _) -> max acc (String.length k)) 0 pairs
  in
  List.iter (fun (k, v) -> Printf.printf "  %-*s  %s\n" width k v) pairs;
  Printf.printf "%!"
