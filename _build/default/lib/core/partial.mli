(** Partial compilation (paper §9, future work).

    Hybrid variational algorithms re-run structurally identical circuits
    with updated rotation angles on every classical-optimizer iteration;
    re-running the full aggregation search each time is what makes the
    paper's compile times "as long as several hours". This module reuses
    a finished compilation: the aggregated instruction structure, qubit
    mapping and SWAP choices are kept, only the member-gate angles are
    rebound, every block is re-costed by the latency model, and the final
    commutativity-aware schedule is recomputed — orders of magnitude
    cheaper than compiling from scratch (measured in the tests). *)

val reparameterize :
  ?config:Compiler.config ->
  Compiler.result ->
  (Qgate.Gate.t -> Qgate.Gate.t) ->
  Compiler.result
(** [reparameterize result f] maps every member gate of every aggregated
    instruction through [f]. [f] must preserve the gate's name and
    qubits (only parameters may change); [Invalid_argument] otherwise.
    [config] must match the one used for the original compilation
    (defaults to {!Compiler.default_config}). *)

val rebind_rotations :
  ?config:Compiler.config ->
  Compiler.result ->
  gamma:float ->
  beta:float ->
  Compiler.result
(** QAOA convenience: rescale every Rz angle by [gamma]/original-γ-slot
    semantics is ambiguous, so instead this substitutes the angle of every
    Rz with [gamma] (times the gate's original sign) and of every Rx with
    [2·beta] — matching the circuits {!Qapps.Qaoa.circuit} generates. *)
