(** Compilation strategies compared in the paper's evaluation (Fig. 9). *)

type t =
  | Isa  (** gate-based baseline: decompose, route, ASAP-schedule *)
  | Cls  (** commutativity detection + CLS, gates still pulsed one by one *)
  | Aggregation  (** instruction aggregation without CLS *)
  | Cls_aggregation  (** the paper's full pipeline *)
  | Cls_hand  (** CLS + mechanical hand optimization ([39, 48]) *)

val all : t list
val to_string : t -> string
val of_string : string -> t
(** Raises [Invalid_argument] on unknown names. *)

val pp : Format.formatter -> t -> unit
