module Gate = Qgate.Gate
module Circuit = Qgate.Circuit
module Inst = Qgdg.Inst
module Gdg = Qgdg.Gdg

type config = {
  device : Qcontrol.Device.t;
  topology : Qmap.Topology.t option;
  width_limit : int;
}

let default_config =
  { device = Qcontrol.Device.default; topology = None; width_limit = 10 }

type result = {
  strategy : Strategy.t;
  schedule : Qsched.Schedule.t;
  latency : float;
  gdg : Gdg.t;
  initial_placement : Qmap.Placement.t;
  final_placement : Qmap.Placement.t;
  n_instructions : int;
  n_swaps_inserted : int;
  n_merges : int;
  compile_time : float;
}

let topology_of config circuit =
  match config.topology with
  | Some t -> t
  | None -> Qmap.Topology.grid_for (Circuit.n_qubits circuit)

let gate_cost device g = Qcontrol.Latency_model.gate_time device g
let serial_cost device gates = Qcontrol.Latency_model.isa_critical_path device gates

let opt_cost config gates =
  Qcontrol.Latency_model.block_time ~width_limit:config.width_limit
    config.device gates

(* relabel instructions to fresh consecutive ids (after routing mixes
   logical instructions with inserted swaps) *)
let renumber insts =
  List.mapi
    (fun id (i : Inst.t) ->
      Inst.make ~id ~latency:i.Inst.latency i.Inst.gates)
    insts

let route_insts ~config ~topology ~placement insts =
  let swap_latency = gate_cost config.device (Gate.swap 0 1) in
  let swap_counter = ref 0 in
  let routed, final =
    Qmap.Router.route ~topology ~placement
      ~support:(fun (i : Inst.t) -> i.Inst.qubits)
      ~remap:(fun f (i : Inst.t) ->
        Inst.make ~id:i.Inst.id ~latency:i.Inst.latency
          (List.map (Gate.map_qubits f) i.Inst.gates))
      ~make_swap:(fun a b ->
        incr swap_counter;
        Inst.make ~id:(-1) ~latency:swap_latency [ Gate.swap a b ])
      insts
  in
  (renumber routed, !swap_counter, final)

let gdg_of_physical ~topology insts =
  Gdg.of_insts ~n_qubits:(Qmap.Topology.n_sites topology) insts

(* ISA baseline: program order, per-gate pulses, ASAP *)
let compile_isa ~config circuit =
  let topology = topology_of config circuit in
  let placement = Qmap.Placement.initial topology circuit in
  let physical, final = Qmap.Router.route_circuit ~placement ~topology circuit in
  let gdg =
    Gdg.of_circuit
      ~latency:(fun gates -> serial_cost config.device gates)
      physical
  in
  let swaps =
    Circuit.count (fun g -> g.Gate.kind = Gate.Swap) physical
    - Circuit.count (fun g -> g.Gate.kind = Gate.Swap) circuit
  in
  (Qsched.Asap.schedule gdg, gdg, swaps, 0, placement, final)

(* commutativity detection + CLS, gates still pulsed individually *)
let compile_cls ~config circuit =
  let topology = topology_of config circuit in
  let gdg =
    Gdg.of_circuit ~latency:(fun gates -> serial_cost config.device gates)
      circuit
  in
  let merges =
    Qgdg.Diagonal.detect_and_contract
      ~latency:(fun gates -> serial_cost config.device gates)
      gdg
  in
  let logical_schedule = Qsched.Cls.schedule gdg in
  let placement = Qmap.Placement.initial topology circuit in
  let routed, swaps, final =
    route_insts ~config ~topology ~placement
      (Qsched.Schedule.linearize logical_schedule)
  in
  (* CLS gets no custom pulses: expand blocks back to gates so the final
     schedule recovers gate-level overlap; the commutativity gain is
     already baked into the routed order *)
  let flat =
    Circuit.make (Qmap.Topology.n_sites topology)
      (List.concat_map (fun (i : Inst.t) -> i.Inst.gates) routed)
  in
  let physical =
    Gdg.of_circuit ~latency:(fun gates -> serial_cost config.device gates)
      flat
  in
  (Qsched.Cls.schedule physical, physical, swaps, merges, placement, final)

(* aggregation without commutativity-aware scheduling *)
let compile_aggregation ~config circuit =
  let topology = topology_of config circuit in
  let placement = Qmap.Placement.initial topology circuit in
  let physical_circuit, final =
    Qmap.Router.route_circuit ~placement ~topology circuit
  in
  let swaps =
    Circuit.count (fun g -> g.Gate.kind = Gate.Swap) physical_circuit
    - Circuit.count (fun g -> g.Gate.kind = Gate.Swap) circuit
  in
  let gdg =
    Gdg.of_circuit ~latency:(fun gates -> opt_cost config gates)
      physical_circuit
  in
  let d_merges =
    Qgdg.Diagonal.detect_and_contract ~latency:(opt_cost config) gdg
  in
  let stats =
    Qagg.Aggregator.run ~width_limit:config.width_limit
      ~cost:(opt_cost config) gdg
  in
  ( Qsched.Asap.schedule gdg,
    gdg,
    swaps,
    d_merges + stats.Qagg.Aggregator.merges,
    placement,
    final )

(* the full pipeline *)
let compile_cls_aggregation ~config circuit =
  let topology = topology_of config circuit in
  let gdg =
    Gdg.of_circuit ~latency:(fun gates -> opt_cost config gates) circuit
  in
  let d_merges =
    Qgdg.Diagonal.detect_and_contract ~latency:(opt_cost config) gdg
  in
  let logical_schedule = Qsched.Cls.schedule gdg in
  let placement = Qmap.Placement.initial topology circuit in
  let routed, swaps, final =
    route_insts ~config ~topology ~placement
      (Qsched.Schedule.linearize logical_schedule)
  in
  let physical = gdg_of_physical ~topology routed in
  let stats =
    Qagg.Aggregator.run ~width_limit:config.width_limit
      ~cost:(opt_cost config) physical
  in
  ( Qsched.Cls.schedule physical,
    physical,
    swaps,
    d_merges + stats.Qagg.Aggregator.merges,
    placement,
    final )

(* CLS + mechanical hand optimization *)
let compile_cls_hand ~config circuit =
  let topology = topology_of config circuit in
  let hand = Handopt.optimize circuit in
  let gdg =
    Gdg.of_circuit ~latency:(fun gates -> serial_cost config.device gates)
      hand
  in
  let logical_schedule = Qsched.Cls.schedule gdg in
  let placement = Qmap.Placement.initial topology hand in
  let routed, swaps, final =
    route_insts ~config ~topology ~placement
      (Qsched.Schedule.linearize logical_schedule)
  in
  (* a second peephole pass over the routed stream (swaps enable new
     cancellations), then the final commutativity-aware schedule *)
  let flat =
    Circuit.make (Qmap.Topology.n_sites topology)
      (List.concat_map (fun (i : Inst.t) -> i.Inst.gates) routed)
  in
  let hand2 = Handopt.optimize flat in
  let physical =
    Gdg.of_circuit ~latency:(fun gates -> serial_cost config.device gates)
      hand2
  in
  (Qsched.Cls.schedule physical, physical, swaps, 0, placement, final)

let compile ?(config = default_config) ~strategy circuit =
  let t0 = Sys.time () in
  let circuit = Qgate.Decompose.to_isa circuit in
  let schedule, gdg, n_swaps_inserted, n_merges, initial_placement,
      final_placement =
    match strategy with
    | Strategy.Isa -> compile_isa ~config circuit
    | Strategy.Cls -> compile_cls ~config circuit
    | Strategy.Aggregation -> compile_aggregation ~config circuit
    | Strategy.Cls_aggregation -> compile_cls_aggregation ~config circuit
    | Strategy.Cls_hand -> compile_cls_hand ~config circuit
  in
  { strategy;
    schedule;
    latency = schedule.Qsched.Schedule.makespan;
    gdg;
    initial_placement;
    final_placement;
    n_instructions = Gdg.size gdg;
    n_swaps_inserted;
    n_merges;
    compile_time = Sys.time () -. t0 }

let compile_all ?config circuit =
  List.map
    (fun strategy -> (strategy, compile ?config ~strategy circuit))
    Strategy.all

let blocks result =
  List.map (fun (i : Inst.t) -> i.Inst.gates) (Gdg.insts result.gdg)

let speedup ~baseline result =
  if result.latency <= 0. then infinity else baseline.latency /. result.latency
