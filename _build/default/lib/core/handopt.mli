(** Hand-optimization baseline (paper §5.3, "CLS + hand optimization").

    Mechanically applies the optimization methods documented for
    iSWAP-architecture superconductors ([39, 48]) plus standard peephole
    identities, the way an experimentalist would tune a circuit by hand:

    - cancellation of adjacent self-inverse pairs (CNOT·CNOT, H·H, …);
    - merging of adjacent same-axis rotations (dropping net-zero ones);
    - fusing CNOT–Rz(θ)–CNOT into a single directly-pulsed ZZ(θ) rotation
      (the "natural two-qubit gate" of Schuch–Siewert [48]).

    Unlike instruction aggregation, the rule set is fixed and local; it
    cannot discover new multi-qubit pulses (paper §6.4). *)

val optimize : Qgate.Circuit.t -> Qgate.Circuit.t
(** Applies the rules to fixpoint. Semantics-preserving up to global
    phase (verified in tests). *)

val fuse_count : Qgate.Circuit.t -> int
(** Number of ZZ fusions the optimizer finds (for reporting). *)
