lib/core/compiler.mli: Qcontrol Qgate Qgdg Qmap Qsched Strategy
