lib/core/report.mli: Compiler Strategy
