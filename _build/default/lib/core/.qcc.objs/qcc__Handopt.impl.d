lib/core/handopt.ml: Array Float Hashtbl List Option Qgate
