lib/core/compiler.ml: Handopt List Qagg Qcontrol Qgate Qgdg Qmap Qsched Strategy Sys
