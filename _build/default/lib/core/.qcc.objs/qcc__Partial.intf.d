lib/core/partial.mli: Compiler Qgate
