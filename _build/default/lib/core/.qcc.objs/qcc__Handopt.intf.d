lib/core/handopt.mli: Qgate
