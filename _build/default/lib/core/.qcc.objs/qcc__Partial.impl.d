lib/core/partial.ml: Compiler Float List Qcontrol Qgate Qgdg Qsched Sys
