lib/core/report.ml: Compiler Float Hashtbl List Option Printf Strategy String
