module Gate = Qgate.Gate

let tau = 2. *. Float.pi

let angle_is_trivial a =
  let r = Float.rem (Float.abs a) tau in
  r < 1e-12 || tau -. r < 1e-12

let same_pair a b =
  List.sort compare (Gate.qubits a) = List.sort compare (Gate.qubits b)

(* adjacent self-inverse pair? *)
let cancels prev g =
  match (prev.Gate.kind, g.Gate.kind) with
  | Gate.X, Gate.X | Gate.Y, Gate.Y | Gate.Z, Gate.Z | Gate.H, Gate.H
  | Gate.S, Gate.Sdg | Gate.Sdg, Gate.S | Gate.T, Gate.Tdg | Gate.Tdg, Gate.T
    ->
    Gate.qubits prev = Gate.qubits g
  | Gate.Cnot, Gate.Cnot | Gate.Ccx, Gate.Ccx -> Gate.qubits prev = Gate.qubits g
  | Gate.Cz, Gate.Cz | Gate.Swap, Gate.Swap -> same_pair prev g
  | _ -> false

(* adjacent same-axis rotations merge into one *)
let merges prev g =
  let combine kind = Some { g with Gate.kind } in
  match (prev.Gate.kind, g.Gate.kind) with
  | Gate.Rx a, Gate.Rx b when Gate.qubits prev = Gate.qubits g ->
    combine (Gate.Rx (a +. b))
  | Gate.Ry a, Gate.Ry b when Gate.qubits prev = Gate.qubits g ->
    combine (Gate.Ry (a +. b))
  | Gate.Rz a, Gate.Rz b when Gate.qubits prev = Gate.qubits g ->
    combine (Gate.Rz (a +. b))
  | Gate.Phase a, Gate.Phase b when Gate.qubits prev = Gate.qubits g ->
    combine (Gate.Phase (a +. b))
  | Gate.Rzz a, Gate.Rzz b when same_pair prev g -> combine (Gate.Rzz (a +. b))
  | Gate.Rxx a, Gate.Rxx b when same_pair prev g -> combine (Gate.Rxx (a +. b))
  | Gate.Ryy a, Gate.Ryy b when same_pair prev g -> combine (Gate.Ryy (a +. b))
  | Gate.Cphase a, Gate.Cphase b when same_pair prev g ->
    combine (Gate.Cphase (a +. b))
  | _ -> None

let rotation_angle g =
  match g.Gate.kind with
  | Gate.Rx a | Gate.Ry a | Gate.Rz a | Gate.Phase a | Gate.Rzz a | Gate.Rxx a
  | Gate.Ryy a | Gate.Cphase a ->
    Some a
  | _ -> None

type entry = { gate : Gate.t; prev_on : (int * int) list }

let one_pass gates =
  let n = List.length gates in
  let entries : entry option array = Array.make (max 1 n) None in
  let used = ref 0 in
  let last : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let changed = ref false in
  let entry_at i = Option.get entries.(i) in
  let kill i =
    (* restore per-qubit last pointers to the killed entry's predecessors *)
    let e = entry_at i in
    entries.(i) <- None;
    List.iter
      (fun q ->
        if Hashtbl.find_opt last q = Some i then begin
          match List.assoc_opt q e.prev_on with
          | Some p when p >= 0 && entries.(p) <> None -> Hashtbl.replace last q p
          | Some _ | None -> Hashtbl.remove last q
        end)
      (Gate.qubits e.gate)
  in
  let append g =
    let prev_on =
      List.map
        (fun q -> (q, Option.value ~default:(-1) (Hashtbl.find_opt last q)))
        (Gate.qubits g)
    in
    entries.(!used) <- Some { gate = g; prev_on };
    List.iter (fun q -> Hashtbl.replace last q !used) (Gate.qubits g);
    incr used
  in
  (* is entry i the immediately preceding live gate on all of g's qubits? *)
  let adjacent_on_all g i =
    List.for_all (fun q -> Hashtbl.find_opt last q = Some i) (Gate.qubits g)
  in
  let rec push g =
    (* drop identity and zero rotations outright *)
    let trivial =
      g.Gate.kind = Gate.I
      || (match rotation_angle g with Some a -> angle_is_trivial a | None -> false)
    in
    if trivial then changed := true
    else begin
      let prev_index =
        match Gate.qubits g with
        | q :: _ -> Hashtbl.find_opt last q
        | [] -> None
      in
      let prev =
        match prev_index with
        | Some i when adjacent_on_all g i -> Some (i, (entry_at i).gate)
        | Some _ | None -> None
      in
      match prev with
      | Some (i, pg) when cancels pg g ->
        kill i;
        changed := true
      | Some (i, pg) when merges pg g <> None ->
        let merged = Option.get (merges pg g) in
        kill i;
        changed := true;
        push merged
      | _ ->
        (* CNOT–Rz–CNOT fusion: g closes a diagonal sandwich *)
        let fused =
          match (g.Gate.kind, Gate.qubits g) with
          | Gate.Cnot, [ c; t ] ->
            (match Hashtbl.find_opt last t with
             | Some j ->
               let ej = entry_at j in
               (match (ej.gate.Gate.kind, Gate.qubits ej.gate) with
                | Gate.Rz theta, [ t' ] when t' = t -> begin
                    match List.assoc_opt t ej.prev_on with
                    | Some i when i >= 0 && entries.(i) <> None ->
                      let ei = entry_at i in
                      if
                        Gate.equal ei.gate (Gate.cnot c t)
                        && Hashtbl.find_opt last c = Some i
                      then begin
                        kill j;
                        kill i;
                        changed := true;
                        Some (Gate.rzz theta c t)
                      end
                      else None
                    | Some _ | None -> None
                  end
                | _ -> None)
             | None -> None)
          | _ -> None
        in
        (match fused with Some g' -> push g' | None -> append g)
    end
  in
  List.iter push gates;
  let out = ref [] in
  for i = !used - 1 downto 0 do
    match entries.(i) with
    | Some e -> out := e.gate :: !out
    | None -> ()
  done;
  (!out, !changed)

let optimize circuit =
  let rec fix gates =
    let gates', changed = one_pass gates in
    if changed then fix gates' else gates'
  in
  Qgate.Circuit.make (Qgate.Circuit.n_qubits circuit)
    (fix (Qgate.Circuit.gates circuit))

let fuse_count circuit =
  let before =
    Qgate.Circuit.count (fun g -> g.Gate.kind = Gate.Cnot) circuit
  in
  let optimized = optimize circuit in
  let after =
    Qgate.Circuit.count (fun g -> g.Gate.kind = Gate.Cnot) optimized
  in
  max 0 ((before - after) / 2)
