type noise = { t1 : float; t2 : float }

let default_noise = { t1 = 30_000.; t2 = 15_000. }

let run_schedule ?(noise = default_noise) schedule =
  let n = schedule.Qsched.Schedule.n_qubits in
  if n > 10 then invalid_arg "Noisy_sim.run_schedule: register too large";
  let clock = Array.make n 0. in
  let idle_to d q time =
    let gap = time -. clock.(q) in
    clock.(q) <- time;
    if gap > 1e-12 then
      Density.idle ~t1:noise.t1 ~t2:noise.t2 ~duration:gap d q
    else d
  in
  let step d (e : Qsched.Schedule.entry) =
    let inst = e.Qsched.Schedule.inst in
    let support, u = Qgdg.Inst.unitary_on_support inst in
    let d = List.fold_left (fun d q -> idle_to d q e.Qsched.Schedule.start) d support in
    let d = Density.apply_unitary d ~targets:support u in
    (* decoherence accumulated while the pulse runs *)
    List.fold_left (fun d q -> idle_to d q e.Qsched.Schedule.finish) d support
  in
  let d =
    List.fold_left step (Density.zero n) schedule.Qsched.Schedule.entries
  in
  let makespan = schedule.Qsched.Schedule.makespan in
  List.fold_left
    (fun d q -> idle_to d q makespan)
    d
    (List.init n (fun q -> q))

let noiseless_output schedule =
  let circuit = Qsched.Schedule.to_circuit schedule in
  State.apply_circuit (State.zero (Qgate.Circuit.n_qubits circuit)) circuit

let schedule_fidelity ?noise schedule =
  Density.fidelity_to_state (run_schedule ?noise schedule)
    (noiseless_output schedule)

let survival_estimate ?(noise = default_noise) ~n_qubits latency =
  let per_qubit =
    Float.exp (-.latency /. noise.t1) *. Float.exp (-.latency /. noise.t2)
  in
  Float.pow per_qubit (float_of_int n_qubits)
