lib/qsim/pulse_sim.mli: Qcontrol Qnum State
