lib/qsim/state.mli: Qgate Qgraph Qnum
