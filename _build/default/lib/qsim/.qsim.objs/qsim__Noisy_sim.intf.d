lib/qsim/noisy_sim.mli: Density Qsched
