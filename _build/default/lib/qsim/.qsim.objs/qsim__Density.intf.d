lib/qsim/density.mli: Qgate Qnum State
