lib/qsim/pulse_sim.ml: Array Expm List Qcontrol Qnum State
