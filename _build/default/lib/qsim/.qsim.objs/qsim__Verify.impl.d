lib/qsim/verify.ml: Array Float Format List Printf Qcontrol Qgate Qgraph Qnum
