lib/qsim/state.ml: Array Cmat Cx Float List Qgate Qgraph Qnum Vec
