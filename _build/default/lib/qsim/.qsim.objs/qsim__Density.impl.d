lib/qsim/density.ml: Array Cmat Cx Float List Qgate Qnum State Vec
