lib/qsim/noisy_sim.ml: Array Density Float List Qgate Qgdg Qsched State
