lib/qsim/verify.mli: Format Qcontrol Qgate Qgraph
