(** Density-matrix simulation with decoherence channels.

    The paper's motivation (§1) is that output fidelity decays at least
    exponentially with latency, so cutting pulse time directly buys
    computational fidelity. This module makes that quantitative: density
    matrices evolved under the compiled schedule with amplitude-damping
    (T₁) and pure-dephasing (T₂) Kraus channels during gates and idles.
    Practical to ~8 qubits. *)

type t

val n_qubits : t -> int
val zero : int -> t
(** |0…0⟩⟨0…0|. *)

val of_state : State.t -> t
(** The pure-state projector. *)

val matrix : t -> Qnum.Cmat.t
(** A copy of the underlying 2ⁿ×2ⁿ matrix. *)

val trace : t -> float
(** Always ≈ 1 for physical states. *)

val purity : t -> float
(** tr(ρ²) ∈ [1/2ⁿ, 1]; 1 iff pure. *)

val apply_unitary : t -> targets:int list -> Qnum.Cmat.t -> t
(** ρ ← UρU† on the listed qubits. *)

val apply_gate : t -> Qgate.Gate.t -> t
val apply_circuit : t -> Qgate.Circuit.t -> t

val apply_kraus : t -> qubit:int -> Qnum.Cmat.t list -> t
(** ρ ← Σ KᵢρKᵢ† for a single-qubit channel. Raises [Invalid_argument]
    when the operators do not satisfy Σ Kᵢ†Kᵢ = I (tolerance 1e-9). *)

val amplitude_damping : gamma:float -> Qnum.Cmat.t list
(** The T₁ channel with decay probability γ ∈ [0, 1]. *)

val phase_damping : lambda:float -> Qnum.Cmat.t list
(** Pure dephasing with coherence-loss probability λ ∈ [0, 1]. *)

val idle : t1:float -> t2:float -> duration:float -> t -> int -> t
(** Apply [duration] of free decoherence to one qubit: amplitude damping
    γ = 1-e^{-t/T₁} and the pure-dephasing remainder so the total
    coherence decay is e^{-t/T₂} (requires T₂ ≤ 2·T₁). Times in the same
    unit (the project uses ns). *)

val fidelity_to_state : t -> State.t -> float
(** ⟨ψ|ρ|ψ⟩. *)

val probabilities : t -> float array
(** Diagonal of ρ in the computational basis. *)
