(** State-vector simulation.

    Holds 2ⁿ complex amplitudes with qubit 0 as the most significant index
    bit (matching {!Qnum.Cmat}). Practical up to ~20 qubits; the repo's
    tests and examples stay ≤ 10. *)

type t

val n_qubits : t -> int
val dim : t -> int

val zero : int -> t
(** |00…0⟩. *)

val basis : int -> int -> t
(** [basis n k] is the computational basis state |k⟩ on [n] qubits. *)

val of_vec : int -> Qnum.Vec.t -> t
(** Raises [Invalid_argument] on dimension mismatch or non-normalized
    input (tolerance 1e-6). *)

val amplitudes : t -> Qnum.Vec.t
(** A copy of the amplitude vector. *)

val amplitude : t -> int -> Qnum.Cx.t

val apply_gate : t -> Qgate.Gate.t -> t
(** Applies the gate in place on a copy; the input state is unchanged. *)

val apply_circuit : t -> Qgate.Circuit.t -> t
(** Raises [Invalid_argument] when register sizes differ. *)

val apply_unitary : t -> targets:int list -> Qnum.Cmat.t -> t
(** Applies a 2^k unitary on the listed qubits. *)

val probability : t -> int -> float
(** Probability of measuring basis state [k]. *)

val probabilities : t -> float array

val expectation : t -> Qgate.Pauli.t -> float
(** ⟨ψ|P|ψ⟩ for a Hermitian Pauli string (real by construction). *)

val measure_all : Qgraph.Rand.t -> t -> int
(** Sample a basis state from the Born distribution. *)

val sample : Qgraph.Rand.t -> t -> int -> int list
(** [sample rng st shots] draws [shots] independent measurements. *)

val fidelity : t -> t -> float
(** |⟨a|b⟩|². *)

val overlap : t -> t -> Qnum.Cx.t
