open Qnum

let unitary ~device ~n_qubits ~couplings pulse =
  Qcontrol.Grape.propagator_of_pulse ~device ~n_qubits ~couplings pulse

let evolve ~device ~couplings st pulse =
  let n_qubits = State.n_qubits st in
  let chans =
    Qcontrol.Hamiltonian.channels ~device ~n_qubits ~couplings
  in
  Array.fold_left
    (fun acc amps ->
      let h = Qcontrol.Hamiltonian.total chans amps in
      let prop = Expm.propagator h pulse.Qcontrol.Pulse.dt in
      State.apply_unitary acc ~targets:(List.init n_qubits (fun q -> q)) prop)
    st pulse.Qcontrol.Pulse.amps

let leakage_proxy pulse =
  let total = ref 0. and count = ref 0 in
  Array.iter
    (fun row ->
      Array.iter
        (fun v ->
          total := !total +. (v *. v);
          incr count)
        row)
    pulse.Qcontrol.Pulse.amps;
  if !count = 0 then 0. else !total /. float_of_int !count
