open Qnum

type t = { n : int; vec : Vec.t }

let n_qubits st = st.n
let dim st = Vec.dim st.vec

let zero n =
  if n < 0 || n > 24 then invalid_arg "State.zero: unsupported register size";
  let vec = Vec.create (1 lsl n) in
  Vec.set vec 0 Cx.one;
  { n; vec }

let basis n k =
  if n < 0 || n > 24 then invalid_arg "State.basis: unsupported register size";
  if k < 0 || k >= 1 lsl n then invalid_arg "State.basis: index out of range";
  { n; vec = Vec.basis (1 lsl n) k }

let of_vec n vec =
  if Vec.dim vec <> 1 lsl n then invalid_arg "State.of_vec: dimension mismatch";
  if Float.abs (Vec.norm2 vec -. 1.) > 1e-6 then
    invalid_arg "State.of_vec: not normalized";
  { n; vec = Vec.copy vec }

let amplitudes st = Vec.copy st.vec
let amplitude st k = Vec.get st.vec k

let apply_unitary st ~targets u =
  let k = List.length targets in
  if Cmat.rows u <> 1 lsl k || Cmat.cols u <> 1 lsl k then
    invalid_arg "State.apply_unitary: unitary/target mismatch";
  List.iter
    (fun q ->
      if q < 0 || q >= st.n then invalid_arg "State.apply_unitary: bad qubit")
    targets;
  let bit_of_qubit q = st.n - 1 - q in
  let target_bits = Array.of_list (List.map bit_of_qubit targets) in
  let n_rest = st.n - k in
  let rest_bits =
    List.filter
      (fun b -> not (Array.exists (( = ) b) target_bits))
      (List.init st.n (fun b -> b))
    |> Array.of_list
  in
  let src = st.vec in
  let dst = Vec.create (Vec.dim src) in
  let sre = Vec.unsafe_re src and sim = Vec.unsafe_im src in
  let dre = Vec.unsafe_re dst and dim_ = Vec.unsafe_im dst in
  let kk = 1 lsl k in
  let indices = Array.make kk 0 in
  for rest_cfg = 0 to (1 lsl n_rest) - 1 do
    let base = ref 0 in
    Array.iteri
      (fun pos b -> if (rest_cfg lsr pos) land 1 = 1 then base := !base lor (1 lsl b))
      rest_bits;
    for local = 0 to kk - 1 do
      let idx = ref !base in
      Array.iteri
        (fun pos b ->
          (* local bit (k-1-pos) corresponds to the pos-th listed target *)
          if (local lsr (k - 1 - pos)) land 1 = 1 then idx := !idx lor (1 lsl b))
        target_bits;
      indices.(local) <- !idx
    done;
    for r = 0 to kk - 1 do
      let sr = ref 0. and si = ref 0. in
      for c = 0 to kk - 1 do
        let z = Cmat.get u r c in
        let zr = Cx.re z and zi = Cx.im z in
        if zr <> 0. || zi <> 0. then begin
          let j = indices.(c) in
          sr := !sr +. (zr *. sre.(j)) -. (zi *. sim.(j));
          si := !si +. (zr *. sim.(j)) +. (zi *. sre.(j))
        end
      done;
      dre.(indices.(r)) <- !sr;
      dim_.(indices.(r)) <- !si
    done
  done;
  { st with vec = dst }

let apply_gate st g =
  apply_unitary st ~targets:(Qgate.Gate.qubits g)
    (Qgate.Unitary.of_kind g.Qgate.Gate.kind)

let apply_circuit st circuit =
  if Qgate.Circuit.n_qubits circuit <> st.n then
    invalid_arg "State.apply_circuit: register size mismatch";
  List.fold_left apply_gate st (Qgate.Circuit.gates circuit)

let probability st k = Cx.norm2 (Vec.get st.vec k)

let probabilities st =
  Array.init (dim st) (fun k -> probability st k)

let expectation st pauli =
  if Qgate.Pauli.n_qubits pauli <> st.n then
    invalid_arg "State.expectation: register size mismatch";
  match Qgate.Pauli.support pauli with
  | [] -> pauli.Qgate.Pauli.coeff
  | supp ->
    (* restrict the string to its support to keep the matrix small *)
    let ops = pauli.Qgate.Pauli.ops in
    let small =
      Qgate.Pauli.make 1.0 (Array.of_list (List.map (fun q -> ops.(q)) supp))
    in
    let m = Qgate.Pauli.matrix small in
    let transformed = apply_unitary st ~targets:supp m in
    let ov = Vec.dot st.vec transformed.vec in
    pauli.Qgate.Pauli.coeff *. Cx.re ov

let measure_all rng st =
  let u = Qgraph.Rand.float rng 1.0 in
  let acc = ref 0. and result = ref (dim st - 1) in
  (try
     for k = 0 to dim st - 1 do
       acc := !acc +. probability st k;
       if u < !acc then begin
         result := k;
         raise Exit
       end
     done
   with Exit -> ());
  !result

let sample rng st shots = List.init shots (fun _ -> measure_all rng st)
let overlap a b = Vec.dot a.vec b.vec
let fidelity a b = Cx.norm2 (overlap a b)
