(** Schrödinger integration of piecewise-constant pulse sequences.

    The verification backend's dynamical half (paper §3.6): given the
    control channels of an aggregate and a pulse sequence, compute the
    realized unitary (exact per-slice exponentials) or evolve a state. *)

val unitary :
  device:Qcontrol.Device.t ->
  n_qubits:int ->
  couplings:(int * int) list ->
  Qcontrol.Pulse.t ->
  Qnum.Cmat.t
(** Time-ordered product of the slice propagators. *)

val evolve :
  device:Qcontrol.Device.t ->
  couplings:(int * int) list ->
  State.t ->
  Qcontrol.Pulse.t ->
  State.t
(** Apply the pulse to a state (same physics, state-vector side). *)

val leakage_proxy : Qcontrol.Pulse.t -> float
(** Mean squared amplitude over all channels and slices — the voltage-
    fluctuation/leakage regularizer the paper's optimal control unit
    penalizes; reported by the verification harness. *)
