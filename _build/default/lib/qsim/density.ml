open Qnum

type t = { n : int; rho : Cmat.t }

let n_qubits d = d.n

let of_state st =
  let v = State.amplitudes st in
  let dim = Vec.dim v in
  let rho =
    Cmat.init dim dim (fun i j -> Cx.mul (Vec.get v i) (Cx.conj (Vec.get v j)))
  in
  { n = State.n_qubits st; rho }

let zero n = of_state (State.zero n)
let matrix d = Cmat.copy d.rho
let trace d = Cx.re (Cmat.trace d.rho)
let purity d = Cx.re (Cmat.trace (Cmat.mul d.rho d.rho))

let lift ~n ~targets u = Cmat.embed ~n_qubits:n ~targets u

let apply_unitary d ~targets u =
  let full = lift ~n:d.n ~targets u in
  { d with rho = Cmat.mul full (Cmat.mul d.rho (Cmat.dagger full)) }

let apply_gate d g =
  apply_unitary d ~targets:(Qgate.Gate.qubits g)
    (Qgate.Unitary.of_kind g.Qgate.Gate.kind)

let apply_circuit d circuit =
  if Qgate.Circuit.n_qubits circuit <> d.n then
    invalid_arg "Density.apply_circuit: register size mismatch";
  List.fold_left apply_gate d (Qgate.Circuit.gates circuit)

let apply_kraus d ~qubit ops =
  let completeness =
    List.fold_left
      (fun acc k -> Cmat.add acc (Cmat.mul (Cmat.dagger k) k))
      (Cmat.zeros 2 2) ops
  in
  if not (Cmat.equal ~eps:1e-9 completeness (Cmat.identity 2)) then
    invalid_arg "Density.apply_kraus: operators are not trace-preserving";
  let rho =
    List.fold_left
      (fun acc k ->
        let full = lift ~n:d.n ~targets:[ qubit ] k in
        Cmat.add acc (Cmat.mul full (Cmat.mul d.rho (Cmat.dagger full))))
      (Cmat.zeros (Cmat.rows d.rho) (Cmat.cols d.rho))
      ops
  in
  { d with rho }

let amplitude_damping ~gamma =
  if gamma < 0. || gamma > 1. then
    invalid_arg "Density.amplitude_damping: gamma outside [0, 1]";
  [ Cmat.of_lists
      [ [ Cx.one; Cx.zero ]; [ Cx.zero; Cx.of_float (Float.sqrt (1. -. gamma)) ] ];
    Cmat.of_lists
      [ [ Cx.zero; Cx.of_float (Float.sqrt gamma) ]; [ Cx.zero; Cx.zero ] ] ]

let phase_damping ~lambda =
  if lambda < 0. || lambda > 1. then
    invalid_arg "Density.phase_damping: lambda outside [0, 1]";
  [ Cmat.of_lists
      [ [ Cx.one; Cx.zero ];
        [ Cx.zero; Cx.of_float (Float.sqrt (1. -. lambda)) ] ];
    Cmat.of_lists
      [ [ Cx.zero; Cx.zero ]; [ Cx.zero; Cx.of_float (Float.sqrt lambda) ] ] ]

let idle ~t1 ~t2 ~duration d qubit =
  if t1 <= 0. || t2 <= 0. then invalid_arg "Density.idle: non-positive T1/T2";
  if t2 > 2. *. t1 +. 1e-9 then
    invalid_arg "Density.idle: T2 must not exceed 2*T1";
  if duration <= 0. then d
  else begin
    let gamma = 1. -. Float.exp (-.duration /. t1) in
    (* total off-diagonal decay must be e^{-t/T2}; amplitude damping alone
       contributes sqrt(1-γ) = e^{-t/(2 T1)}, pure dephasing supplies the
       rest *)
    let remaining = Float.exp (-.duration /. t2) /. Float.sqrt (1. -. gamma) in
    let lambda = Float.max 0. (1. -. (remaining *. remaining)) in
    let d = apply_kraus d ~qubit (amplitude_damping ~gamma) in
    apply_kraus d ~qubit (phase_damping ~lambda)
  end

let fidelity_to_state d st =
  let v = State.amplitudes st in
  let rv = Cmat.apply d.rho v in
  Cx.re (Vec.dot v rv)

let probabilities d =
  Array.init (Cmat.rows d.rho) (fun k -> Cx.re (Cmat.get d.rho k k))
