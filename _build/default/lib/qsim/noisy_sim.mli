(** Noisy execution of compiled schedules.

    Evolves a density matrix through a timed instruction schedule:
    instructions apply their member-gate unitary, and every qubit
    accumulates T₁/T₂ decoherence for exactly the wall-clock time it
    spends — busy or idle — so a schedule's makespan translates directly
    into fidelity loss. This quantifies the paper's central claim that
    latency reduction buys computational fidelity. *)

type noise = {
  t1 : float;  (** amplitude-damping time, ns *)
  t2 : float;  (** coherence time, ns; must satisfy T₂ ≤ 2·T₁ *)
}

val default_noise : noise
(** T₁ = 30 µs, T₂ = 15 µs — representative of the paper-era transmons. *)

val run_schedule : ?noise:noise -> Qsched.Schedule.t -> Density.t
(** Start from |0…0⟩, apply every schedule entry at its start time with
    idle decoherence filling the gaps, and idle all qubits to the
    makespan. Practical for schedules on ≤ 8 qubits. *)

val schedule_fidelity : ?noise:noise -> Qsched.Schedule.t -> float
(** Fidelity ⟨ψ|ρ|ψ⟩ of the noisy output against the schedule's own
    noiseless output state. *)

val survival_estimate : ?noise:noise -> n_qubits:int -> float -> float
(** The paper's back-of-envelope bound: e^{-t·n/T₁}·e^{-t·n/T₂} for
    latency [t] — an analytic cross-check of the simulated fidelity
    scale. *)
