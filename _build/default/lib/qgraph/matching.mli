(** Maximal-cardinality matching on computational graphs.

    The CLS scheduler (paper §3.3.2, Fig. 7) models schedulable gates as
    edges of a graph whose vertices are qubits (1-qubit gates are
    self-loops) and schedules a maximal matching each round. This module
    works directly on labelled edge lists so parallel candidate gates
    between the same pair of qubits are kept distinct.

    [maximal_edges] is a deterministic greedy maximal matching followed by
    single-swap augmentation (replace one matched edge by two vertex-
    disjoint candidates). Greedy alone is a 1/2-approximation of maximum;
    the augmentation pass empirically closes most of the gap, and
    maximality — no schedulable gate left idle — is what the paper's
    algorithm requires. *)

type 'a edge = { u : int; v : int; label : 'a }
(** An undirected edge between vertices [u] and [v]; [u = v] encodes a
    1-qubit gate occupying a single vertex. *)

val maximal_edges : n:int -> 'a edge list -> 'a edge list
(** A maximal set of vertex-disjoint edges, in input order. [n] is the
    number of vertices; raises [Invalid_argument] on out-of-range
    endpoints. *)

val is_matching : n:int -> 'a edge list -> bool
(** No two edges share a vertex. *)

val is_maximal : n:int -> candidates:'a edge list -> 'a edge list -> bool
(** [is_maximal ~n ~candidates m]: no candidate edge could be added to [m]
    without a vertex conflict. *)
