(** Balanced graph bisection — the METIS substitute.

    The qubit mapper (paper §3.4.1) places frequently-interacting qubits
    near each other by recursively bisecting the interaction graph along
    small cuts. The paper uses METIS; this module provides the same
    primitive with a BFS-grown seed split refined by Kernighan–Lin passes,
    which is the classic heuristic family METIS itself refines. *)

val bisect : ?passes:int -> Graph.t -> bool array
(** [bisect g] splits the vertices into two sides of size ⌈n/2⌉ and
    ⌊n/2⌋ ([true] = side A), heuristically minimizing the crossing weight.
    Deterministic. [passes] caps Kernighan–Lin refinement sweeps
    (default 8). *)

val bisect_list : ?passes:int -> Graph.t -> int list * int list
(** Same, as two sorted vertex lists (A, B) with |A| ≥ |B|. *)

val recursive_order : ?passes:int -> Graph.t -> int array
(** [recursive_order g] recursively bisects [g] and concatenates the
    leaves, yielding a vertex order in which strongly-connected clusters
    are contiguous — the linear layout used for mapping onto a device. *)
