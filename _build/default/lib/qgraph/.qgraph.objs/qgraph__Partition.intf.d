lib/qgraph/partition.mli: Graph
