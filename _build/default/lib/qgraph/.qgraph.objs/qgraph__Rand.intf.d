lib/qgraph/rand.mli:
