lib/qgraph/rand.ml: Array Int64
