lib/qgraph/matching.mli:
