lib/qgraph/grid.ml: Float Graph
