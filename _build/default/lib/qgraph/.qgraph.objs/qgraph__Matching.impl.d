lib/qgraph/matching.ml: Array List
