lib/qgraph/partition.ml: Array Graph List Queue
