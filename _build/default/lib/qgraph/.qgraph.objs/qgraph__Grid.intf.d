lib/qgraph/grid.mli: Graph
