type t = { width : int; height : int }

let make ~width ~height =
  if width <= 0 || height <= 0 then invalid_arg "Grid.make: non-positive size";
  { width; height }

let square_for n =
  if n <= 0 then invalid_arg "Grid.square_for: non-positive size";
  let h = int_of_float (Float.sqrt (float_of_int n)) in
  let rec fit h =
    let w = (n + h - 1) / h in
    if w - h > 1 then fit (h + 1) else make ~width:w ~height:h
  in
  fit (max 1 h)

let size g = g.width * g.height

let index g ~row ~col =
  if row < 0 || row >= g.height || col < 0 || col >= g.width then
    invalid_arg "Grid.index: out of range";
  (row * g.width) + col

let coords g k =
  if k < 0 || k >= size g then invalid_arg "Grid.coords: out of range";
  (k / g.width, k mod g.width)

let distance g a b =
  let ra, ca = coords g a and rb, cb = coords g b in
  abs (ra - rb) + abs (ca - cb)

let adjacent g a b = distance g a b = 1

let graph g =
  let gr = Graph.create (size g) in
  for r = 0 to g.height - 1 do
    for c = 0 to g.width - 1 do
      let k = index g ~row:r ~col:c in
      if c + 1 < g.width then Graph.add_edge gr k (index g ~row:r ~col:(c + 1));
      if r + 1 < g.height then Graph.add_edge gr k (index g ~row:(r + 1) ~col:c)
    done
  done;
  gr
