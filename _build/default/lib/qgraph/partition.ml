let seed_split g =
  let n = Graph.n_vertices g in
  let side = Array.make n false in
  let size_a = (n + 1) / 2 in
  (* grow side A by BFS from vertex 0 so the seed split already follows the
     graph's cluster structure; fill up from unvisited vertices if needed *)
  let count = ref 0 in
  let seen = Array.make n false in
  let queue = Queue.create () in
  let push v =
    if (not seen.(v)) && !count < size_a then begin
      seen.(v) <- true;
      side.(v) <- true;
      incr count;
      Queue.add v queue
    end
  in
  if n > 0 then push 0;
  while !count < size_a do
    if Queue.is_empty queue then begin
      (* disconnected graph: restart from the next unvisited vertex *)
      let rec find v = if seen.(v) then find (v + 1) else v in
      push (find 0)
    end
    else begin
      let u = Queue.pop queue in
      List.iter push (Graph.neighbors g u)
    end
  done;
  side

(* one Kernighan–Lin pass; returns true when it improved the cut *)
let kl_pass g side =
  let n = Graph.n_vertices g in
  if n < 2 then false
  else begin
    let locked = Array.make n false in
    let d = Array.make n 0. in
    let recompute v =
      let acc = ref 0. in
      List.iter
        (fun u ->
          let w = Graph.weight g v u in
          if side.(u) <> side.(v) then acc := !acc +. w else acc := !acc -. w)
        (Graph.neighbors g v);
      d.(v) <- !acc
    in
    for v = 0 to n - 1 do
      recompute v
    done;
    let swaps = ref [] in
    let cumulative = ref 0. in
    let best_sum = ref 0. and best_len = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      (* best unlocked pair (a in A, b in B) *)
      let best = ref None in
      for a = 0 to n - 1 do
        if side.(a) && not locked.(a) then
          for b = 0 to n - 1 do
            if (not side.(b)) && not locked.(b) then begin
              let gain = d.(a) +. d.(b) -. (2. *. Graph.weight g a b) in
              match !best with
              | Some (_, _, bg) when bg >= gain -> ()
              | _ -> best := Some (a, b, gain)
            end
          done
      done;
      match !best with
      | None -> continue_ := false
      | Some (a, b, gain) ->
        locked.(a) <- true;
        locked.(b) <- true;
        side.(a) <- false;
        side.(b) <- true;
        cumulative := !cumulative +. gain;
        swaps := (a, b) :: !swaps;
        if !cumulative > !best_sum +. 1e-12 then begin
          best_sum := !cumulative;
          best_len := List.length !swaps
        end;
        List.iter recompute (a :: b :: Graph.neighbors g a @ Graph.neighbors g b)
    done;
    (* roll back swaps beyond the best prefix *)
    let all = List.rev !swaps in
    List.iteri
      (fun k (a, b) ->
        if k >= !best_len then begin
          side.(a) <- true;
          side.(b) <- false
        end)
      all;
    !best_sum > 1e-12
  end

let bisect ?(passes = 8) g =
  let side = seed_split g in
  let rec refine remaining =
    if remaining > 0 && kl_pass g side then refine (remaining - 1)
  in
  refine passes;
  side

let bisect_list ?passes g =
  let side = bisect ?passes g in
  let a = ref [] and b = ref [] in
  for v = Graph.n_vertices g - 1 downto 0 do
    if side.(v) then a := v :: !a else b := v :: !b
  done;
  (!a, !b)

let recursive_order ?passes g =
  let rec go vertices =
    match vertices with
    | [] -> []
    | [ v ] -> [ v ]
    | [ u; v ] -> [ u; v ]
    | _ ->
      let sub, back = Graph.induced g vertices in
      let a, b = bisect_list ?passes sub in
      let lift side = List.map (fun v -> back.(v)) side in
      go (lift a) @ go (lift b)
  in
  Array.of_list (go (List.init (Graph.n_vertices g) (fun v -> v)))
