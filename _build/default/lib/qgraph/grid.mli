(** Rectangular grid helpers for device topologies.

    Near-term superconducting devices expose a rectangular-grid qubit
    connectivity (paper §3.4.1); this module provides index/coordinate
    conversions and the grid's connectivity graph. Cells are numbered
    row-major: cell (r, c) has index [r * width + c]. *)

type t = { width : int; height : int }

val make : width:int -> height:int -> t
(** Raises [Invalid_argument] unless both dimensions are positive. *)

val square_for : int -> t
(** Smallest near-square grid with at least [n] cells (width ≥ height,
    width - height ≤ 1). *)

val size : t -> int
val index : t -> row:int -> col:int -> int
val coords : t -> int -> int * int
val adjacent : t -> int -> int -> bool
(** Manhattan-distance-1 neighborhood. *)

val distance : t -> int -> int -> int
(** Manhattan distance between two cells. *)

val graph : t -> Graph.t
(** Nearest-neighbor connectivity graph of the grid. *)
