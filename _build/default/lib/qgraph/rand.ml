type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden;
  mix t.state

let create seed = { state = mix (Int64.of_int seed) }
let split t = { state = mix (next t) }

let int t bound =
  if bound <= 0 then invalid_arg "Rand.int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  bound *. (v /. 9007199254740992.)

let bool t = Int64.logand (next t) 1L = 1L

let shuffle t a =
  for k = Array.length a - 1 downto 1 do
    let j = int t (k + 1) in
    let tmp = a.(k) in
    a.(k) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rand.choose: empty array";
  a.(int t (Array.length a))

let pick_distinct t k n =
  if k > n then invalid_arg "Rand.pick_distinct: k > n";
  let a = Array.init n (fun v -> v) in
  shuffle t a;
  Array.to_list (Array.sub a 0 k)
