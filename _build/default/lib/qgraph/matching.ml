type 'a edge = { u : int; v : int; label : 'a }

let check_edge n e =
  if e.u < 0 || e.u >= n || e.v < 0 || e.v >= n then
    invalid_arg "Matching: vertex out of range"

let occupies e = if e.u = e.v then [ e.u ] else [ e.u; e.v ]

let is_matching ~n m =
  let used = Array.make n false in
  List.for_all
    (fun e ->
      check_edge n e;
      let vs = occupies e in
      if List.exists (fun v -> used.(v)) vs then false
      else begin
        List.iter (fun v -> used.(v) <- true) vs;
        true
      end)
    m

let is_maximal ~n ~candidates m =
  let used = Array.make n false in
  List.iter (fun e -> List.iter (fun v -> used.(v) <- true) (occupies e)) m;
  not
    (List.exists
       (fun e -> List.for_all (fun v -> not used.(v)) (occupies e))
       candidates)

let maximal_edges ~n edges =
  List.iter (check_edge n) edges;
  let used = Array.make n false in
  let free e = List.for_all (fun v -> not used.(v)) (occupies e) in
  let take e = List.iter (fun v -> used.(v) <- true) (occupies e) in
  let release e = List.iter (fun v -> used.(v) <- false) (occupies e) in
  let greedy =
    List.filter
      (fun e ->
        if free e then begin
          take e;
          true
        end
        else false)
      edges
  in
  (* augmentation: try to swap one matched 2-vertex edge for two disjoint
     unmatched candidates that only conflict through it *)
  let matched = ref greedy in
  let improved = ref true in
  while !improved do
    improved := false;
    let try_swap e =
      if e.u <> e.v then begin
        release e;
        let gain =
          let first =
            List.find_opt
              (fun c -> free c && occupies c <> occupies e)
              edges
          in
          match first with
          | None -> None
          | Some c1 ->
            take c1;
            let second = List.find_opt free edges in
            (match second with
             | Some c2 -> Some (c1, c2)
             | None ->
               release c1;
               None)
        in
        match gain with
        | Some (c1, c2) ->
          take c2;
          matched :=
            c1 :: c2 :: List.filter (fun x -> x != e) !matched;
          improved := true;
          true
        | None ->
          take e;
          false
      end
      else false
    in
    ignore (List.exists try_swap !matched)
  done;
  (* keep deterministic input order *)
  List.filter (fun e -> List.memq e !matched) edges
