type t = { n : int; adj : (int, float) Hashtbl.t array }

let create n =
  if n < 0 then invalid_arg "Graph.create: negative size";
  { n; adj = Array.init n (fun _ -> Hashtbl.create 4) }

let n_vertices g = g.n

let check g v =
  if v < 0 || v >= g.n then invalid_arg "Graph: vertex out of range"

let add_edge ?(weight = 1.) g u v =
  check g u;
  check g v;
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  let prev = Option.value ~default:0. (Hashtbl.find_opt g.adj.(u) v) in
  Hashtbl.replace g.adj.(u) v (prev +. weight);
  Hashtbl.replace g.adj.(v) u (prev +. weight)

let remove_edge g u v =
  check g u;
  check g v;
  Hashtbl.remove g.adj.(u) v;
  Hashtbl.remove g.adj.(v) u

let has_edge g u v =
  check g u;
  check g v;
  Hashtbl.mem g.adj.(u) v

let weight g u v =
  check g u;
  check g v;
  Option.value ~default:0. (Hashtbl.find_opt g.adj.(u) v)

let neighbors g v =
  check g v;
  List.sort compare (Hashtbl.fold (fun u _ acc -> u :: acc) g.adj.(v) [])

let degree g v =
  check g v;
  Hashtbl.length g.adj.(v)

let edges g =
  let acc = ref [] in
  for u = 0 to g.n - 1 do
    Hashtbl.iter (fun v w -> if u < v then acc := (u, v, w) :: !acc) g.adj.(u)
  done;
  List.sort compare !acc

let n_edges g = List.length (edges g)

let of_edges n es =
  let g = create n in
  List.iter (fun (u, v) -> add_edge g u v) es;
  g

let copy g =
  { n = g.n; adj = Array.map Hashtbl.copy g.adj }

let bfs_distances g src =
  check g src;
  let dist = Array.make g.n max_int in
  dist.(src) <- 0;
  let queue = Queue.create () in
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Hashtbl.iter
      (fun v _ ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
      g.adj.(u)
  done;
  dist

let shortest_path g src dst =
  check g src;
  check g dst;
  if src = dst then [ src ]
  else begin
    let parent = Array.make g.n (-1) in
    let dist = Array.make g.n max_int in
    dist.(src) <- 0;
    let queue = Queue.create () in
    Queue.add src queue;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      (* visit neighbors in sorted order for deterministic paths *)
      List.iter
        (fun v ->
          if dist.(v) = max_int then begin
            dist.(v) <- dist.(u) + 1;
            parent.(v) <- u;
            if v = dst then found := true;
            Queue.add v queue
          end)
        (neighbors g u)
    done;
    if not !found then raise Not_found;
    let rec walk v acc = if v = src then src :: acc else walk parent.(v) (v :: acc) in
    walk dst []
  end

let connected_components g =
  let seen = Array.make g.n false in
  let comps = ref [] in
  for v = 0 to g.n - 1 do
    if not seen.(v) then begin
      let comp = ref [] in
      let queue = Queue.create () in
      Queue.add v queue;
      seen.(v) <- true;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        comp := u :: !comp;
        Hashtbl.iter
          (fun w _ ->
            if not seen.(w) then begin
              seen.(w) <- true;
              Queue.add w queue
            end)
          g.adj.(u)
      done;
      comps := List.sort compare !comp :: !comps
    end
  done;
  List.rev !comps

let is_connected g = g.n <= 1 || List.length (connected_components g) = 1

let total_weight g =
  List.fold_left (fun acc (_, _, w) -> acc +. w) 0. (edges g)

let cut_weight g side =
  if Array.length side <> g.n then invalid_arg "Graph.cut_weight: size mismatch";
  List.fold_left
    (fun acc (u, v, w) -> if side.(u) <> side.(v) then acc +. w else acc)
    0. (edges g)

let induced g vs =
  let k = List.length vs in
  let back = Array.of_list vs in
  let fwd = Hashtbl.create k in
  List.iteri (fun idx v -> Hashtbl.replace fwd v idx) vs;
  let sub = create k in
  List.iter
    (fun (u, v, w) ->
      match (Hashtbl.find_opt fwd u, Hashtbl.find_opt fwd v) with
      | Some a, Some b -> add_edge ~weight:w sub a b
      | _ -> ())
    (edges g);
  (sub, back)

let pp ppf g =
  Format.fprintf ppf "graph(n=%d):@ @[<v>" g.n;
  List.iter (fun (u, v, w) -> Format.fprintf ppf "%d -- %d (%g)@," u v w) (edges g);
  Format.fprintf ppf "@]"
