(** Deterministic pseudo-random numbers for workload generation.

    A SplitMix64 generator: fast, statistically solid for simulation
    workloads, and fully reproducible from a seed, so every benchmark
    instance in this repository is deterministic. *)

type t

val create : int -> t
(** [create seed] builds a generator; equal seeds give equal streams. *)

val split : t -> t
(** A statistically independent child generator; the parent advances. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Raises on [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_distinct : t -> int -> int -> int list
(** [pick_distinct t k n] draws [k] distinct values from [0, n).
    Raises [Invalid_argument] when [k > n]. *)
