(** Undirected graphs with integer vertices and edge weights.

    Vertices are the integers [0 .. n-1]. Parallel edges collapse (weights
    accumulate); self-loops are rejected. Used for qubit-interaction graphs,
    MAXCUT instances and device topologies. *)

type t

val create : int -> t
(** [create n] is the edgeless graph on [n] vertices. *)

val n_vertices : t -> int
val n_edges : t -> int

val add_edge : ?weight:float -> t -> int -> int -> unit
(** Adds (or re-weights, accumulating) the edge {u,v}. Raises
    [Invalid_argument] on out-of-range vertices or a self-loop. *)

val remove_edge : t -> int -> int -> unit
(** Removes the edge entirely if present; no-op otherwise. *)

val has_edge : t -> int -> int -> bool
val weight : t -> int -> int -> float
(** [weight g u v] is 0. when the edge is absent. *)

val neighbors : t -> int -> int list
(** Sorted list of neighbors. *)

val degree : t -> int -> int

val edges : t -> (int * int * float) list
(** All edges as (u, v, w) with u < v, sorted lexicographically. *)

val of_edges : int -> (int * int) list -> t
(** Unweighted construction convenience. *)

val copy : t -> t

val bfs_distances : t -> int -> int array
(** Hop distances from a source; unreachable vertices get [max_int]. *)

val shortest_path : t -> int -> int -> int list
(** A shortest path (vertex list, inclusive of both endpoints).
    Raises [Not_found] when no path exists. *)

val connected_components : t -> int list list
(** Vertex sets of the connected components. *)

val is_connected : t -> bool

val total_weight : t -> float

val cut_weight : t -> bool array -> float
(** [cut_weight g side] is the total weight of edges crossing the
    bipartition described by [side]. *)

val induced : t -> int list -> t * int array
(** [induced g vs] is the subgraph on vertex list [vs] (relabelled
    0..k-1 in list order) together with the map back to original ids. *)

val pp : Format.formatter -> t -> unit
