type stmt =
  | Apply of Qgate.Gate.t
  | Repeat of int * stmt list
  | Call of string * int list

type module_def = { name : string; arity : int; body : stmt list }

type t = { n_qubits : int; modules : module_def list; main : stmt list }

let make ~n_qubits ~modules main =
  let names = List.map (fun m -> m.name) modules in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg "Program.make: duplicate module names";
  { n_qubits; modules; main }

let find_module p name = List.find (fun m -> m.name = name) p.modules
