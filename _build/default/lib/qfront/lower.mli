(** Frontend lowering: loop unrolling and module flattening (paper §3.3).

    Produces the flat logical circuit the rest of the compiler consumes. *)

exception Lowering_error of string

val flatten : Program.t -> Qgate.Circuit.t
(** Unrolls [Repeat] and inlines [Call]s (formal qubits substituted by the
    actuals). Raises {!Lowering_error} on unknown modules, arity
    mismatches, negative repeat counts, or call chains deeper than
    {!max_call_depth} (recursion guard). *)

val max_call_depth : int
