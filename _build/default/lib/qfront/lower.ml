exception Lowering_error of string

let max_call_depth = 64

let fail fmt = Printf.ksprintf (fun s -> raise (Lowering_error s)) fmt

let flatten p =
  let rec stmts depth env body =
    List.concat_map (stmt depth env) body
  and stmt depth env = function
    | Program.Apply g -> [ Qgate.Gate.map_qubits env g ]
    | Program.Repeat (count, body) ->
      if count < 0 then fail "negative repeat count %d" count;
      List.concat (List.init count (fun _ -> stmts depth env body))
    | Program.Call (name, actuals) ->
      if depth >= max_call_depth then
        fail "call chain deeper than %d (recursive modules?)" max_call_depth;
      let m =
        try Program.find_module p name
        with Not_found -> fail "unknown module %S" name
      in
      if List.length actuals <> m.Program.arity then
        fail "module %S expects %d qubits, got %d" name m.Program.arity
          (List.length actuals);
      let actuals = Array.of_list (List.map env actuals) in
      let inner_env formal =
        if formal < 0 || formal >= Array.length actuals then
          fail "module %S uses formal qubit %d outside its arity" name formal
        else actuals.(formal)
      in
      stmts (depth + 1) inner_env m.Program.body
  in
  Qgate.Circuit.make p.Program.n_qubits
    (stmts 0 (fun q -> q) p.Program.main)
