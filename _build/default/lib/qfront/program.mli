(** Structured quantum programs.

    A minimal source form above flat circuits — named modules (gate
    subroutines over formal qubits) and counted loops — enough to exercise
    the frontend passes the paper lists (module flattening and loop
    unrolling, Fig. 5) on realistic program shapes. *)

type stmt =
  | Apply of Qgate.Gate.t  (** gate on formal (or main-register) qubits *)
  | Repeat of int * stmt list
  | Call of string * int list  (** module name, actual qubit arguments *)

type module_def = {
  name : string;
  arity : int;  (** formal qubits are 0 .. arity-1 *)
  body : stmt list;
}

type t = {
  n_qubits : int;
  modules : module_def list;
  main : stmt list;
}

val make : n_qubits:int -> modules:module_def list -> stmt list -> t
(** Raises [Invalid_argument] on duplicate module names. *)

val find_module : t -> string -> module_def
(** Raises [Not_found]. *)
