lib/qfront/program.mli: Qgate
