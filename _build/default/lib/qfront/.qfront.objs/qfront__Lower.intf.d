lib/qfront/lower.mli: Program Qgate
