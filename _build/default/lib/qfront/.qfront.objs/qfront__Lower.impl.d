lib/qfront/lower.ml: Array List Printf Program Qgate
