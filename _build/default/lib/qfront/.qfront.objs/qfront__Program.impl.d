lib/qfront/program.ml: List Qgate
