(** Diagonal-unitary detection and contraction (paper §3.3.1, §4.2).

    Searches the GDG for contiguous runs confined to a single qubit pair
    whose composed unitary is diagonal — the CNOT–Rz–CNOT structures of
    QAOA/UCCSD circuits — and contracts each into one instruction. The
    contracted blocks commute with one another, which is what unlocks the
    commutativity-aware scheduler's freedom. Runs are limited to 2 qubits
    (to preserve parallelism) and [max_run_gates] member gates. *)

val max_run_gates : int
(** 10, the paper's practical bound on exhaustive block search. *)

val detect_and_contract :
  latency:(Qgate.Gate.t list -> float) -> Gdg.t -> int
(** Contract until fixpoint; returns the number of merges performed. The
    GDG is modified in place; merged instructions are re-costed with
    [latency]. *)
