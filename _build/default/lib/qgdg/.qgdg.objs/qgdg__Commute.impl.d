lib/qgdg/commute.ml: Hashtbl Inst List Qgate Qnum
