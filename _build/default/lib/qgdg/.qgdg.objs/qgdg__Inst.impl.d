lib/qgdg/inst.ml: Format List Qgate String
