lib/qgdg/diagonal.mli: Gdg Qgate
