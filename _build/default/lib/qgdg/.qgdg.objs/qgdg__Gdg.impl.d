lib/qgdg/gdg.ml: Array Float Format Hashtbl Inst Int List Option Printf Qgate Set
