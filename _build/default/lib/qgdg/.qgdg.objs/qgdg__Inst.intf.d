lib/qgdg/inst.mli: Format Qgate Qnum
