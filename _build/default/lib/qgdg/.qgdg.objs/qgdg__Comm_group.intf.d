lib/qgdg/comm_group.mli: Gdg Inst
