lib/qgdg/gdg.mli: Format Hashtbl Inst Qgate
