lib/qgdg/diagonal.ml: Commute Gdg Hashtbl Inst List
