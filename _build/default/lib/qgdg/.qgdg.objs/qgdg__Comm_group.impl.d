lib/qgdg/comm_group.ml: Array Commute Gdg Hashtbl Inst List
