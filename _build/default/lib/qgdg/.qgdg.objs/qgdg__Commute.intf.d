lib/qgdg/commute.mli: Inst Qgate
