(** Instructions — the nodes of the gate dependence graph.

    An instruction is a block of member gates executed as one unit (a
    single gate initially; an aggregated multi-gate block after
    commutativity detection and instruction aggregation). Its latency is
    assigned by the caller's cost model (the latency model, standing in
    for the optimal control unit). *)

type t = {
  id : int;
  gates : Qgate.Gate.t list;  (** members, in time order; never empty *)
  qubits : int list;  (** sorted support *)
  latency : float;  (** pulse time, ns *)
}

val make : id:int -> latency:float -> Qgate.Gate.t list -> t
(** Raises [Invalid_argument] on an empty gate list or negative latency. *)

val of_gate : id:int -> latency:float -> Qgate.Gate.t -> t
val width : t -> int
val acts_on : t -> int -> bool
val shares_qubit : t -> t -> bool
val common_qubits : t -> t -> int list
val is_singleton : t -> bool

val merge : id:int -> latency:float -> t -> t -> t
(** [merge ~id ~latency earlier later] concatenates members in time order.
    The caller is responsible for the merge being schedulable (see
    [Qagg.Action]). *)

val unitary_on_support : t -> int list * Qnum.Cmat.t
(** Support and composed unitary with qubits relabelled to the support
    (see {!Qgate.Unitary.on_support}). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
