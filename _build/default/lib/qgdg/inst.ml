type t = {
  id : int;
  gates : Qgate.Gate.t list;
  qubits : int list;
  latency : float;
}

let support_of gates =
  List.sort_uniq compare (List.concat_map Qgate.Gate.qubits gates)

let make ~id ~latency gates =
  if gates = [] then invalid_arg "Inst.make: empty gate list";
  if latency < 0. then invalid_arg "Inst.make: negative latency";
  { id; gates; qubits = support_of gates; latency }

let of_gate ~id ~latency g = make ~id ~latency [ g ]
let width i = List.length i.qubits
let acts_on i q = List.mem q i.qubits
let common_qubits a b = List.filter (fun q -> acts_on b q) a.qubits
let shares_qubit a b = common_qubits a b <> []
let is_singleton i = match i.gates with [ _ ] -> true | _ -> false

let merge ~id ~latency earlier later =
  make ~id ~latency (earlier.gates @ later.gates)

let unitary_on_support i = Qgate.Unitary.on_support i.gates

let pp ppf i =
  Format.fprintf ppf "#%d[%s|%.1fns]" i.id
    (String.concat "; " (List.map Qgate.Gate.to_string i.gates))
    i.latency

let to_string i = Format.asprintf "%a" pp i
