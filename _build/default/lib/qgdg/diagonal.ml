let max_run_gates = 10

(* grow the longest contiguous run starting at [id] whose support stays
   within one qubit pair; each appended node must have its predecessor (on
   every qubit it shares with the run) inside the run, so the run is a
   schedulable contiguous block. [last_on] tracks, per qubit, the most
   recently appended run node touching it — appends only extend chains
   forward, so it is the chain-last run node on that qubit. *)
let grow_run g id =
  let start = Gdg.find g id in
  let run = ref [ id ] in
  let run_mem = Hashtbl.create 8 in
  Hashtbl.replace run_mem id ();
  let gate_count = ref (List.length start.Inst.gates) in
  let support = ref start.Inst.qubits in
  let last_on = Hashtbl.create 4 in
  List.iter (fun q -> Hashtbl.replace last_on q id) start.Inst.qubits;
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    let candidates =
      List.filter_map
        (fun q ->
          match Hashtbl.find_opt last_on q with
          | None -> None
          | Some last ->
            (match Gdg.succ_on g last ~qubit:q with
             | Some s when not (Hashtbl.mem run_mem s.Inst.id) -> Some s
             | Some _ | None -> None))
        !support
    in
    let eligible (c : Inst.t) =
      let union = List.sort_uniq compare (c.Inst.qubits @ !support) in
      List.length union <= 2
      && !gate_count + List.length c.Inst.gates <= max_run_gates
      && List.for_all
           (fun q ->
             (not (List.mem q !support))
             ||
             match Gdg.pred_on g c.Inst.id ~qubit:q with
             | Some p -> Hashtbl.mem run_mem p.Inst.id
             | None -> false)
           c.Inst.qubits
    in
    match List.find_opt eligible candidates with
    | Some c ->
      run := c.Inst.id :: !run;
      Hashtbl.replace run_mem c.Inst.id ();
      gate_count := !gate_count + List.length c.Inst.gates;
      support := List.sort_uniq compare (c.Inst.qubits @ !support);
      List.iter (fun q -> Hashtbl.replace last_on q c.Inst.id) c.Inst.qubits;
      continue_ := true
    | None -> ()
  done;
  List.rev !run

let diagonal_prefix g run =
  (* longest prefix (>= 2 nodes) whose composed unitary is diagonal *)
  let rec prefixes acc rev_best = function
    | [] -> rev_best
    | id :: rest ->
      let acc = acc @ [ id ] in
      let gates = List.concat_map (fun i -> (Gdg.find g i).Inst.gates) acc in
      let rev_best =
        if List.length acc >= 2 && Commute.is_diagonal_block gates then Some acc
        else rev_best
      in
      prefixes acc rev_best rest
  in
  prefixes [] None run

let detect_and_contract ~latency g =
  let merges = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    let ids = List.map (fun (i : Inst.t) -> i.Inst.id) (Gdg.insts g) in
    List.iter
      (fun id ->
        if Gdg.mem g id then begin
          let run = grow_run g id in
          match diagonal_prefix g run with
          | Some (first :: (_ :: _ as rest)) ->
            let merged =
              List.fold_left
                (fun acc next ->
                  let gates =
                    (Gdg.find g acc).Inst.gates @ (Gdg.find g next).Inst.gates
                  in
                  (Gdg.merge g ~latency:(latency gates) acc next).Inst.id)
                first rest
            in
            ignore merged;
            incr merges;
            changed := true
          | Some _ | None -> ()
        end)
      ids
  done;
  !merges
