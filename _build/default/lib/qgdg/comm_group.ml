type t = {
  per_qubit : int list list array;  (** ordered groups of instruction ids *)
  index : (int * int, int) Hashtbl.t;  (** (qubit, id) -> group position *)
}

let groups_of_chain commute g chain =
  let groups = ref [] and current = ref [] in
  let flush () =
    if !current <> [] then begin
      groups := List.rev !current :: !groups;
      current := []
    end
  in
  List.iter
    (fun (inst : Inst.t) ->
      let commutes_with_all =
        List.for_all (fun id -> commute (Gdg.find g id) inst) !current
      in
      if not commutes_with_all then flush ();
      current := inst.Inst.id :: !current)
    chain;
  flush ();
  List.rev !groups

let set_qubit t q ordered =
  List.iter
    (fun group -> List.iter (fun id -> Hashtbl.remove t.index (q, id)) group)
    t.per_qubit.(q);
  t.per_qubit.(q) <- ordered;
  List.iteri
    (fun pos group ->
      List.iter (fun id -> Hashtbl.replace t.index (q, id) pos) group)
    ordered

let refresh ?(commute = Commute.insts) t g ~qubits =
  List.iter
    (fun q -> set_qubit t q (groups_of_chain commute g (Gdg.chain g q)))
    (List.sort_uniq compare qubits)

let build ?(commute = Commute.insts) g =
  let n = Gdg.n_qubits g in
  let t =
    { per_qubit = Array.make (max 1 n) []; index = Hashtbl.create 256 }
  in
  refresh ~commute t g ~qubits:(List.init n (fun q -> q));
  t

let groups_on t q = t.per_qubit.(q)

let group_index t ~qubit id =
  match Hashtbl.find_opt t.index (qubit, id) with
  | Some pos -> pos
  | None -> raise Not_found

let same_group t ~qubit a b =
  match (Hashtbl.find_opt t.index (qubit, a), Hashtbl.find_opt t.index (qubit, b))
  with
  | Some x, Some y -> x = y
  | _ -> false

let reorderable t a b =
  List.for_all
    (fun q -> same_group t ~qubit:q a.Inst.id b.Inst.id)
    (Inst.common_qubits a b)
