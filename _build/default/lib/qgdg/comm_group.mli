(** Per-qubit commutation groups (paper §3.3.2).

    On each qubit, the instruction chain is partitioned into maximal runs
    of consecutive, pairwise-commuting instructions. Two instructions may
    be freely reordered iff they share a group on {e every} common qubit —
    e.g. the two CNOTs of a CNOT–Rz–CNOT structure share a group on the
    control qubit (an Rz there can travel through) but not on the target
    qubit. *)

type t

val build : ?commute:(Inst.t -> Inst.t -> bool) -> Gdg.t -> t
(** Pairwise operator-commutation checks along every chain. [commute]
    defaults to {!Commute.insts}; callers that rebuild groups repeatedly
    (the aggregator) pass a memoized check — instruction ids are unique
    and blocks immutable, so caching by id pair is sound. *)

val refresh :
  ?commute:(Inst.t -> Inst.t -> bool) -> t -> Gdg.t -> qubits:int list -> unit
(** Recompute the groups of the listed qubits only — a merge changes
    membership solely on the merged instruction's support, so the
    aggregator refreshes incrementally instead of rebuilding all chains. *)

val groups_on : t -> int -> int list list
(** Ordered groups (of instruction ids) on a qubit. *)

val group_index : t -> qubit:int -> int -> int
(** Position of an instruction's group on a qubit.
    Raises [Not_found] when the instruction is not on that qubit. *)

val same_group : t -> qubit:int -> int -> int -> bool

val reorderable : t -> Inst.t -> Inst.t -> bool
(** Same group on every shared qubit (true for disjoint supports). *)
