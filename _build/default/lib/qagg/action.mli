(** The action space of instruction aggregation (paper §4.1).

    Two instructions may aggregate when:
    + they overlap (share at least one qubit);
    + on every shared qubit they are either in the same commutation group
      (siblings in the quantum GDG) or in immediate parent–child chain
      position; and
    + the pulses can be made contiguous — with operator-level commutation
      groups this holds whenever condition 2 does, because any group
      member can be scheduled last (first) in its group.

    The aggregate's width must also stay within the optimal-control unit's
    limit. *)

val is_schedulable : Qgdg.Gdg.t -> Qgdg.Comm_group.t -> int -> int -> bool
(** [is_schedulable g groups a b] — may [a]'s block absorb [b] (with [a]'s
    members first)? [b] must not precede [a] on any shared qubit. *)

val merged_width : Qgdg.Gdg.t -> int -> int -> int

val candidates :
  Qgdg.Gdg.t -> Qgdg.Comm_group.t -> width_limit:int -> (int * int) list
(** All schedulable (a, b) pairs within the width limit: immediate
    children and later same-group siblings of each node. *)
