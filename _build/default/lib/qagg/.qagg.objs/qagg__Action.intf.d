lib/qagg/action.mli: Qgdg
