lib/qagg/action.ml: Hashtbl List Qgdg
