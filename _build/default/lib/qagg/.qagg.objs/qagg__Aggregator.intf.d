lib/qagg/aggregator.mli: Qgate Qgdg
