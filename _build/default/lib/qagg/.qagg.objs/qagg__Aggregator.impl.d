lib/qagg/aggregator.ml: Action Float Hashtbl List Qgdg Queue
