(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md section 5 for the experiment index) plus
   Bechamel microbenchmarks of the compiler passes.

     dune exec bench/main.exe             -- everything
     dune exec bench/main.exe fig9 fig10  -- selected experiments *)

module Gate = Qgate.Gate
module Compiler = Qcc.Compiler
module Strategy = Qcc.Strategy

let device = Qcontrol.Device.default

let header title = Printf.printf "\n==== %s ====\n%!" title
let gate_time g = Qcontrol.Latency_model.gate_time device g
let block_time gs = Qcontrol.Latency_model.block_time device gs

(* ------------------------------------------------------------------ *)
(* Table 1: instruction execution times for the QAOA example           *)

let gamma = Qapps.Qaoa.default_gamma
let beta = Qapps.Qaoa.default_beta

let table1 () =
  header "Table 1: instruction pulse times (ns) for the Fig. 4 QAOA circuit";
  let rows_gates =
    [ ("CNOT", gate_time (Gate.cnot 0 1), 47.1);
      ("SWAP", gate_time (Gate.swap 0 1), 50.1);
      ("H", gate_time (Gate.h 0), 13.7);
      (Printf.sprintf "Rz(%.2f)" gamma, gate_time (Gate.rz gamma 0), 9.8);
      (Printf.sprintf "Rx(%.2f)" beta, gate_time (Gate.rx beta 0), 6.1) ]
  in
  let zz a b = [ Gate.cnot a b; Gate.rz gamma b; Gate.cnot a b ] in
  let rows_aggregates =
    [ ("G1 = H,H + CNOT-Rz-CNOT",
       block_time ([ Gate.h 0; Gate.h 1 ] @ zz 0 1), 54.9);
      ("G2 = H", block_time [ Gate.h 0 ], 13.7);
      ("G3 = SWAP + CNOT-Rz-CNOT",
       block_time (Gate.swap 1 2 :: zz 0 1), 42.0);
      ("G4 = CNOT-Rz-CNOT", block_time (zz 0 1), 31.4);
      ("G5 = Rx", block_time [ Gate.rx beta 0 ], 6.1) ]
  in
  Printf.printf "%-28s %10s %10s\n" "instruction" "model" "paper";
  List.iter
    (fun (name, ours, paper) ->
      Printf.printf "%-28s %10.1f %10.1f\n" name ours paper)
    (rows_gates @ rows_aggregates);
  Printf.printf "%!"

(* ------------------------------------------------------------------ *)
(* Fig. 4: the 3-qubit QAOA example end to end                         *)

let fig4 () =
  header "Fig. 4: QAOA triangle on a 3-qubit line";
  let circuit = Qapps.Qaoa.triangle_example () in
  let config =
    { Compiler.default_config with
      Compiler.topology = Some (Qmap.Topology.line 3) }
  in
  let results = Compiler.compile_all ~config circuit in
  List.iter
    (fun (s, r) ->
      Printf.printf "  %-16s %8.1f ns\n" (Strategy.to_string s)
        r.Compiler.latency)
    results;
  let isa = List.assoc Strategy.Isa results in
  let agg = List.assoc Strategy.Cls_aggregation results in
  Printf.printf
    "  gate-based %.1f vs aggregated %.1f: speedup %.2fx (paper: 381.9 vs 128.3 = 2.97x)\n%!"
    isa.Compiler.latency agg.Compiler.latency
    (Compiler.speedup ~baseline:isa agg)

(* ------------------------------------------------------------------ *)
(* Fig. 4(c,d): pulses for the diagonal block                          *)

let fig4_pulses () =
  header "Fig. 4(c,d): pulses for the CNOT-Rz-CNOT block (G4-style)";
  let zz = [ Gate.cnot 0 1; Gate.rz gamma 1; Gate.cnot 0 1 ] in
  let gate_based = Qcontrol.Latency_model.isa_critical_path device zz in
  let optimized = block_time zz in
  Printf.printf
    "  gate-based concatenation: %.1f ns; aggregated model: %.1f ns\n"
    gate_based optimized;
  let _, target = Qgate.Unitary.on_support zz in
  let duration = optimized *. 1.3 in
  let problem =
    { Qcontrol.Grape.n_qubits = 2;
      couplings = [ (0, 1) ];
      target;
      duration;
      n_steps = 40;
      device }
  in
  let r = Qcontrol.Grape.optimize ~target_fidelity:0.99 problem in
  Printf.printf "  GRAPE at %.1f ns: fidelity %.4f after %d iterations\n"
    duration r.Qcontrol.Grape.fidelity r.Qcontrol.Grape.iterations;
  Format.printf "%a@." Qcontrol.Pulse.pp r.Qcontrol.Grape.pulse;
  Printf.printf "%!"

(* ------------------------------------------------------------------ *)
(* Table 3: benchmarks and program characteristics                     *)

let table3 () =
  header "Table 3: benchmark characteristics";
  Printf.printf "%-15s %-12s %6s %6s %6s %6s %12s %12s %12s\n" "benchmark"
    "application" "paperQ" "ourQ" "gates" "depth" "parallel" "locality"
    "commute";
  List.iter
    (fun (b : Qapps.Suite.benchmark) ->
      let circuit = Qapps.Suite.lowered b in
      let c = Qapps.Characteristics.analyze circuit in
      let lv v l =
        Printf.sprintf "%.2f/%s" v (Qapps.Characteristics.level_to_string l)
      in
      Printf.printf "%-15s %-12s %6d %6d %6d %6d %12s %12s %12s\n%!"
        b.Qapps.Suite.name b.Qapps.Suite.application b.Qapps.Suite.paper_qubits
        c.Qapps.Characteristics.qubits c.Qapps.Characteristics.gates
        c.Qapps.Characteristics.depth
        (lv c.Qapps.Characteristics.parallelism
           c.Qapps.Characteristics.parallelism_level)
        (lv c.Qapps.Characteristics.spatial_locality
           c.Qapps.Characteristics.spatial_locality_level)
        (lv c.Qapps.Characteristics.commutativity
           c.Qapps.Characteristics.commutativity_level))
    Qapps.Suite.all

(* ------------------------------------------------------------------ *)
(* Fig. 9: normalized latency across the suite                         *)

let results_cache : (string, (Strategy.t * Compiler.result) list) Hashtbl.t =
  Hashtbl.create 16

let compile_benchmark (b : Qapps.Suite.benchmark) =
  match Hashtbl.find_opt results_cache b.Qapps.Suite.name with
  | Some r -> r
  | None ->
    let circuit = Qapps.Suite.lowered b in
    let r = Compiler.compile_all circuit in
    Hashtbl.replace results_cache b.Qapps.Suite.name r;
    r

let fig9 () =
  header "Fig. 9: normalized circuit latency (ISA = 1.0)";
  let rows =
    List.map
      (fun (b : Qapps.Suite.benchmark) ->
        Printf.printf "  compiling %s...\n%!" b.Qapps.Suite.name;
        (b.Qapps.Suite.name, compile_benchmark b))
      Qapps.Suite.all
  in
  Qcc.Report.print_speedup_table
    ~header:"(the 9 Fig. 9 benchmarks)"
    (List.filter (fun (n, _) -> n <> "ising-n60") rows);
  Printf.printf "\nall 10 Table 3 instances (including ising-n60):\n";
  Qcc.Report.print_speedup_table ~header:"" rows;
  Printf.printf
    "paper: geomean speedup 5.07x (cls+aggregation), 2.338x (cls+hand), max ~10x\n\
     note: our ISA baseline schedules the generated program order, which is\n\
     more serial than ScaffCC's for QAOA-family circuits; per-stage ratios\n\
     (CLS vs ISA, aggregation vs CLS) are the comparable quantities -- see\n\
     EXPERIMENTS.md.\n%!"

(* ------------------------------------------------------------------ *)
(* Fig. 10: allowed instruction width vs normalized latency            *)

let fig10 () =
  header "Fig. 10: instruction width vs normalized latency (cls+aggregation)";
  let widths = [ 2; 4; 6; 8; 10 ] in
  let sweep name =
    let b = Qapps.Suite.find name in
    let circuit = Qapps.Suite.lowered b in
    let isa = Compiler.compile ~strategy:Strategy.Isa circuit in
    let norms =
      List.map
        (fun w ->
          let config =
            { Compiler.default_config with Compiler.width_limit = w }
          in
          let r =
            Compiler.compile ~config ~strategy:Strategy.Cls_aggregation circuit
          in
          r.Compiler.latency /. isa.Compiler.latency)
        widths
    in
    Printf.printf "  %-14s" name;
    List.iter (fun v -> Printf.printf " %8.3f" v) norms;
    Printf.printf "\n%!"
  in
  Printf.printf "  %-14s" "width:";
  List.iter (fun w -> Printf.printf " %8d" w) widths;
  Printf.printf "\n  parallel applications (expected: early saturation):\n";
  List.iter sweep [ "maxcut-line"; "maxcut-reg4"; "ising-n30" ];
  Printf.printf "  serialized applications (expected: gains up to width 10):\n";
  List.iter sweep [ "sqrt-n3"; "uccsd-n4"; "uccsd-n6" ]

(* ------------------------------------------------------------------ *)
(* Fig. 11: spatial locality vs aggregation benefit                    *)

let fig11 () =
  header "Fig. 11: aggregated latency normalized to CLS (3 MAXCUT instances)";
  Printf.printf
    "  paper trend: high locality (line) benefits least, low locality\n  (cluster) benefits most\n";
  List.iter
    (fun name ->
      let results = compile_benchmark (Qapps.Suite.find name) in
      let cls = List.assoc Strategy.Cls results in
      let agg = List.assoc Strategy.Cls_aggregation results in
      Printf.printf "  %-16s %.3f\n%!" name
        (agg.Compiler.latency /. cls.Compiler.latency))
    [ "maxcut-line"; "maxcut-reg4"; "maxcut-cluster" ]

(* ------------------------------------------------------------------ *)
(* Sec. 6.4: encoding complexity vs advantage over hand optimization   *)

let sec64 () =
  header "Sec. 6.4: latency-reduction ratio, aggregation vs hand optimization";
  Printf.printf
    "  (reduction = ISA latency - strategy latency; paper: ~1x for\n  MAXCUT-line, 3.12x for UCCSD-n4, 3.68x for square root)\n";
  List.iter
    (fun name ->
      let results = compile_benchmark (Qapps.Suite.find name) in
      let isa = (List.assoc Strategy.Isa results).Compiler.latency in
      let agg =
        (List.assoc Strategy.Cls_aggregation results).Compiler.latency
      in
      let hand = (List.assoc Strategy.Cls_hand results).Compiler.latency in
      let ratio = (isa -. agg) /. Float.max 1e-9 (isa -. hand) in
      Printf.printf "  %-16s %.2fx\n%!" name ratio)
    [ "maxcut-line"; "uccsd-n4"; "sqrt-n3" ]

(* ------------------------------------------------------------------ *)
(* Sec. 3.6: verification of sampled aggregated instructions           *)

let verify () =
  header "Sec. 3.6: verification of sampled aggregated instructions";
  let rng = Qgraph.Rand.create 2025 in
  (* pulse-level verification (GRAPE) on 2-qubit diagonal blocks: compile
     maxcut-line at width 2 so the aggregates are exactly the paper's
     Sec. 4.2 diagonal blocks *)
  let narrow =
    Compiler.compile
      ~config:{ Compiler.default_config with Compiler.width_limit = 2 }
      ~strategy:Strategy.Cls_aggregation
      (Qapps.Suite.lowered (Qapps.Suite.find "maxcut-line"))
  in
  let two_qubit_blocks =
    List.filter
      (fun block ->
        List.length
          (List.sort_uniq compare (List.concat_map Gate.qubits block))
        = 2)
      (Compiler.blocks narrow)
  in
  let report =
    Qsim.Verify.verify_sampled ~samples:3 ~max_pulse_width:2 rng device
      two_qubit_blocks
  in
  Format.printf "  maxcut-line (width 2): @[<v>%a@]@." Qsim.Verify.pp_report
    report;
  (* unitary-level verification across the rest *)
  List.iter
    (fun name ->
      let results = compile_benchmark (Qapps.Suite.find name) in
      let agg = List.assoc Strategy.Cls_aggregation results in
      let report =
        Qsim.Verify.verify_sampled ~samples:10 ~max_pulse_width:0 rng device
          (Compiler.blocks agg)
      in
      Printf.printf "  %-16s unitary check: %d/%d ok\n%!" name
        report.Qsim.Verify.n_passed report.Qsim.Verify.n_checked)
    [ "maxcut-line"; "ising-n30"; "maxcut-cluster" ]

(* ------------------------------------------------------------------ *)
(* Latency -> fidelity: the paper's motivating claim, quantified       *)

let fidelity () =
  header "Fidelity: output fidelity under T1/T2 decoherence (Sec. 1 claim)";
  let graph =
    Qgraph.Graph.of_edges 6 (List.init 6 (fun k -> (k, (k + 1) mod 6)))
  in
  let circuit = Qapps.Qaoa.circuit ~gamma:0.4 ~beta:1.2 graph in
  let config =
    { Compiler.default_config with
      Compiler.topology = Some (Qmap.Topology.line 6) }
  in
  let noise = Qsim.Noisy_sim.default_noise in
  Printf.printf
    "  QAOA on a 6-ring, line device, T1 = %.0f ns, T2 = %.0f ns\n"
    noise.Qsim.Noisy_sim.t1 noise.Qsim.Noisy_sim.t2;
  Printf.printf "  %-18s %12s %10s %10s\n" "strategy" "latency (ns)"
    "fidelity" "analytic";
  List.iter
    (fun (s, (r : Compiler.result)) ->
      let f = Qsim.Noisy_sim.schedule_fidelity ~noise r.Compiler.schedule in
      Printf.printf "  %-18s %12.1f %10.4f %10.4f\n%!" (Strategy.to_string s)
        r.Compiler.latency f
        (Qsim.Noisy_sim.survival_estimate ~noise ~n_qubits:6
           r.Compiler.latency))
    (Compiler.compile_all ~config circuit);
  Printf.printf
    "  latency reduction converts directly into output fidelity -- the\n  paper's do-or-die argument for pulse-level compilation.\n"

(* ------------------------------------------------------------------ *)
(* Ablations of the design choices DESIGN.md calls out                 *)

let ablations () =
  header "Ablation: monotonicity bound (paper's serial pessimism vs model cost)";
  let cost gs = block_time gs in
  List.iter
    (fun name ->
      let circuit = Qapps.Suite.lowered (Qapps.Suite.find name) in
      let run pessimism =
        let g = Qgdg.Gdg.of_circuit ~latency:cost circuit in
        ignore (Qgdg.Diagonal.detect_and_contract ~latency:cost g);
        let stats = Qagg.Aggregator.run ~pessimism ~cost g in
        stats.Qagg.Aggregator.final_makespan
      in
      Printf.printf "  %-14s serial %10.1f ns | model %10.1f ns\n%!" name
        (run `Serial) (run `Model))
    [ "maxcut-line"; "uccsd-n4"; "sqrt-n3" ];

  header "Ablation: initial placement (recursive bisection vs identity)";
  List.iter
    (fun name ->
      let circuit = Qapps.Suite.lowered (Qapps.Suite.find name) in
      let topology = Qmap.Topology.grid_for (Qgate.Circuit.n_qubits circuit) in
      let swaps placement =
        let routed, _ = Qmap.Router.route_circuit ?placement ~topology circuit in
        Qgate.Circuit.count (fun g -> g.Gate.kind = Gate.Swap) routed
      in
      let identity =
        Qmap.Placement.identity
          ~n_logical:(Qgate.Circuit.n_qubits circuit) topology
      in
      Printf.printf "  %-14s bisection %5d swaps | identity %5d swaps\n%!"
        name (swaps None) (swaps (Some identity)))
    [ "maxcut-reg4"; "maxcut-cluster"; "sqrt-n3" ];

  header "Ablation: physical architecture (paper Appendix A)";
  Printf.printf "  cls+aggregation latency of the Fig. 4 example per coupling:\n";
  let circuit = Qapps.Qaoa.triangle_example () in
  List.iter
    (fun interaction ->
      let config =
        { Compiler.default_config with
          Compiler.device =
            Qcontrol.Device.with_interaction interaction Qcontrol.Device.default;
          topology = Some (Qmap.Topology.line 3) }
      in
      let isa = Compiler.compile ~config ~strategy:Strategy.Isa circuit in
      let agg =
        Compiler.compile ~config ~strategy:Strategy.Cls_aggregation circuit
      in
      Printf.printf "  %-45s isa %8.1f ns | cls+agg %8.1f ns (%.2fx)\n%!"
        (Qcontrol.Device.interaction_name interaction)
        isa.Compiler.latency agg.Compiler.latency
        (Compiler.speedup ~baseline:isa agg))
    [ Qcontrol.Device.Xy; Qcontrol.Device.Zz; Qcontrol.Device.Heisenberg ];

  header "Ablation: fermion encoding (Sec. 5.2: Jordan-Wigner vs Bravyi-Kitaev)";
  List.iter
    (fun n ->
      let run encoding =
        let circuit =
          Qgate.Decompose.to_isa (Qapps.Uccsd.circuit ~encoding n)
        in
        let isa = Compiler.compile ~strategy:Strategy.Isa circuit in
        let agg =
          Compiler.compile ~strategy:Strategy.Cls_aggregation circuit
        in
        (Qgate.Circuit.n_gates circuit, isa.Compiler.latency,
         agg.Compiler.latency)
      in
      let jw_g, jw_isa, jw_agg = run Qapps.Fermion.Jordan_wigner in
      let bk_g, bk_isa, bk_agg = run Qapps.Fermion.Bravyi_kitaev in
      Printf.printf
        "  uccsd-n%d  JW: %4d gates, isa %8.1f, cls+agg %8.1f (%.2fx) | BK: %4d gates, isa %8.1f, cls+agg %8.1f (%.2fx)\n%!"
        n jw_g jw_isa jw_agg (jw_isa /. jw_agg) bk_g bk_isa bk_agg
        (bk_isa /. bk_agg))
    [ 4; 6 ];

  header "Ablation: commutativity detection off (aggregation on raw gates)";
  List.iter
    (fun name ->
      let circuit = Qapps.Suite.lowered (Qapps.Suite.find name) in
      let with_detection detect =
        let g = Qgdg.Gdg.of_circuit ~latency:cost circuit in
        if detect then
          ignore (Qgdg.Diagonal.detect_and_contract ~latency:cost g);
        ignore (Qagg.Aggregator.run ~cost g);
        Qsched.Cls.makespan g
      in
      Printf.printf "  %-14s with detection %10.1f ns | without %10.1f ns\n%!"
        name (with_detection true) (with_detection false))
    [ "maxcut-line"; "ising-n30" ]

(* ------------------------------------------------------------------ *)
(* Pipeline observability: per-pass wall time for BENCH_pipeline.json  *)

let pipeline_benchmarks =
  [ "maxcut-line"; "maxcut-reg4"; "ising-n30"; "sqrt-n3"; "uccsd-n4";
    "uccsd-n6" ]

let pipeline () =
  header "Pipeline: per-pass wall-time breakdown (BENCH_pipeline.json)";
  let entries =
    List.concat_map
      (fun name ->
        let circuit = Qapps.Suite.lowered (Qapps.Suite.find name) in
        Printf.printf "  profiling %s...\n%!" name;
        (* cold commutation memos per circuit so the recorded times do
           not depend on which benchmarks ran earlier in the process —
           the perf gate resets the same way before re-measuring *)
        Qgdg.Commute.reset_memos ();
        Qflow.Summary.reset_memo ();
        (* one stage cache per circuit, as compile_all would use: the
           pipeline.cache.{hit,miss} counters land in each entry's
           metrics *)
        let cache = Qcc.Pipeline.Cache.create () in
        List.map
          (fun strategy ->
            let obs = Qobs.Trace.create () in
            let metrics = Qobs.Metrics.create () in
            let r = Compiler.compile ~obs ~metrics ~cache ~strategy circuit in
            let passes =
              (* one row per pass span under the compile root, with wall
                 time and the GC allocation delta (same shape as the
                 flight-recorder ledger rows) *)
              match r.Compiler.trace with
              | None -> []
              | Some root ->
                List.map Qobs.Ledger.pass_row (Qobs.Span.children root)
            in
            Qobs.Json.Obj
              [ ("benchmark", Qobs.Json.Str name);
                ("strategy", Qobs.Json.Str (Strategy.to_string strategy));
                ("compile_time_s", Qobs.Json.Float r.Compiler.compile_time);
                ("latency_ns", Qobs.Json.Float r.Compiler.latency);
                ("instructions", Qobs.Json.Int r.Compiler.n_instructions);
                ("swaps", Qobs.Json.Int r.Compiler.n_swaps_inserted);
                ("merges", Qobs.Json.Int r.Compiler.n_merges);
                ("passes", Qobs.Json.List passes);
                ("metrics", Qobs.Metrics.to_json metrics) ])
          Strategy.all)
      pipeline_benchmarks
  in
  let doc =
    Qobs.Json.Obj
      [ ("schema", Qobs.Json.Str "qcc.bench.pipeline/1");
        ("entries", Qobs.Json.List entries) ]
  in
  Qobs.Json.write_file "BENCH_pipeline.json" doc;
  Printf.printf "  wrote BENCH_pipeline.json (%d entries)\n%!"
    (List.length entries)

(* fast CI guard: the shared-prefix cache must actually share (hits for
   every strategy past the first) and must not change results *)
let pipeline_smoke () =
  header "Pipeline smoke: stage-cache sharing on two benchmarks";
  let failed = ref false in
  List.iter
    (fun name ->
      let circuit = Qapps.Suite.lowered (Qapps.Suite.find name) in
      (* warm-up so the shared/isolated timings compare like for like *)
      ignore (Compiler.compile ~strategy:Strategy.Cls_aggregation circuit);
      let cache = Qcc.Pipeline.Cache.create () in
      let t0 = Qobs.Clock.now_ns () in
      let shared = Compiler.compile_all ~cache circuit in
      let shared_ms = (Qobs.Clock.now_ns () -. t0) /. 1e6 in
      let hits = Qcc.Pipeline.Cache.hits cache in
      let t1 = Qobs.Clock.now_ns () in
      let isolated =
        List.map
          (fun (s, _) -> (s, Compiler.compile ~strategy:s circuit))
          shared
      in
      let isolated_ms = (Qobs.Clock.now_ns () -. t1) /. 1e6 in
      (* a fully warm chain (every pass hits) must be near-free *)
      let t2 = Qobs.Clock.now_ns () in
      ignore
        (Compiler.compile ~cache ~strategy:Strategy.Cls_aggregation circuit);
      let warm_ms = (Qobs.Clock.now_ns () -. t2) /. 1e6 in
      let mismatches =
        List.filter
          (fun ((_, (a : Compiler.result)), (_, (b : Compiler.result))) ->
            a.Compiler.latency <> b.Compiler.latency
            || a.Compiler.n_merges <> b.Compiler.n_merges
            || a.Compiler.n_instructions <> b.Compiler.n_instructions)
          (List.combine shared isolated)
      in
      Printf.printf
        "  %-14s cache hits %3d | shared %8.1f ms | isolated %8.1f ms | warm recompile %6.2f ms | mismatches %d\n%!"
        name hits shared_ms isolated_ms warm_ms (List.length mismatches);
      if hits = 0 then begin
        Printf.eprintf "  FAIL %s: stage cache recorded no hits\n%!" name;
        failed := true
      end;
      if mismatches <> [] then begin
        Printf.eprintf "  FAIL %s: cached results diverge from uncached\n%!"
          name;
        failed := true
      end)
    [ "maxcut-line"; "uccsd-n4" ];
  if !failed then exit 1

(* ------------------------------------------------------------------ *)
(* Detect speed: oracle scanner vs the retained reference fixpoint     *)

(* CI guard for the windowed, oracle-backed detect rewrite: on each
   circuit the production path must perform the same merges and leave a
   structurally identical graph, and must not be slower. Route counters
   come from the ambient registry, so the printed breakdown is exactly
   what [qcc stats] aggregates from ledgers. *)
let detect_speed () =
  header "Detect speed: oracle scanner vs reference fixpoint";
  let cost gs = block_time gs in
  let shape g =
    List.map
      (fun (i : Qgdg.Inst.t) -> (i.Qgdg.Inst.id, i.Qgdg.Inst.qubits, i.Qgdg.Inst.gates))
      (Qgdg.Gdg.insts g)
  in
  let failed = ref false in
  List.iter
    (fun name ->
      let circuit = Qapps.Suite.lowered (Qapps.Suite.find name) in
      let metrics = Qobs.Metrics.create () in
      Qcc.Compiler.reset_all_memos ();
      let g_new = Qgdg.Gdg.of_circuit ~latency:cost circuit in
      let t0 = Qobs.Clock.now_ns () in
      let merges_new =
        Qobs.Metrics.with_ambient metrics (fun () ->
            Qgdg.Diagonal.detect_and_contract ~latency:cost g_new)
      in
      let new_ms = (Qobs.Clock.now_ns () -. t0) /. 1e6 in
      let g_ref = Qgdg.Gdg.of_circuit ~latency:cost circuit in
      let t1 = Qobs.Clock.now_ns () in
      let merges_ref =
        Qgdg.Diagonal.detect_and_contract_reference ~latency:cost g_ref
      in
      let ref_ms = (Qobs.Clock.now_ns () -. t1) /. 1e6 in
      let identical =
        merges_new = merges_ref
        && Digest.string (Marshal.to_string (shape g_new) [])
           = Digest.string (Marshal.to_string (shape g_ref) [])
      in
      let route r =
        Qobs.Metrics.counter_value metrics (Printf.sprintf "detect.route.%s" r)
      in
      Printf.printf
        "  %-14s reference %8.1f ms | oracle %8.1f ms | x%5.1f | merges %4d | \
         routes s/m/pp/d/o %d/%d/%d/%d/%d\n%!"
        name ref_ms new_ms
        (if new_ms > 0. then ref_ms /. new_ms else infinity)
        merges_new (route "structural") (route "memo") (route "phase_poly")
        (route "dense") (route "oversize");
      List.iter
        (fun r ->
          match
            Qobs.Metrics.hist_value metrics
              (Printf.sprintf "detect.route.%s.ms" r)
          with
          | Some h -> Printf.printf "    %-12s %6d checks %8.2f ms\n" r h.Qobs.Metrics.n h.Qobs.Metrics.sum
          | None -> ())
        [ "structural"; "memo"; "phase_poly"; "dense"; "oversize" ];
      if not identical then begin
        Printf.eprintf
          "  FAIL %s: oracle detect diverges from reference (merges %d vs %d)\n%!"
          name merges_new merges_ref;
        let a = shape g_new and b = shape g_ref in
        Printf.eprintf "    sizes %d vs %d\n%!" (List.length a) (List.length b);
        (try
           List.iteri
             (fun i ((ida, qa, ga), (idb, qb, gb)) ->
               if ida <> idb || qa <> qb || ga <> gb then begin
                 Printf.eprintf
                   "    first diff at %d: id %d vs %d, qubits [%s] vs [%s], \
                    gates %d vs %d\n%!"
                   i ida idb
                   (String.concat ";" (List.map string_of_int qa))
                   (String.concat ";" (List.map string_of_int qb))
                   (List.length ga) (List.length gb);
                 raise Exit
               end)
             (List.combine a b)
         with Exit -> ());
        failed := true
      end;
      let checks = Qobs.Metrics.counter_value metrics "detect.checks" in
      let routed =
        route "structural" + route "memo" + route "phase_poly" + route "dense"
        + route "oversize"
      in
      if checks <> routed then begin
        Printf.eprintf
          "  FAIL %s: detect.route.* sums to %d but detect.checks is %d\n%!"
          name routed checks;
        failed := true
      end)
    [ "maxcut-reg4"; "sqrt-n3"; "uccsd-n6" ];
  if !failed then exit 1

(* ------------------------------------------------------------------ *)
(* Perf gate: fresh per-pass times vs the committed baseline           *)

(* Compares a fresh min-of-N run against BENCH_pipeline.json with a
   per-pass tolerance. To stay robust against uniform machine skew
   (different hardware, load) while still catching a single slow pass,
   the per-pass ratios are calibrated by their median: a machine that is
   2x slower everywhere has median ratio 2 and normalized ratios ~1, but
   one regressed pass sticks out of the median unchanged. Knobs (env):
     QCC_PERF_BASELINE      baseline file    (BENCH_pipeline.json)
     QCC_PERF_GATE_FACTOR   fail threshold on the normalized ratio (1.75)
     QCC_PERF_GATE_FLOOR_MS ignore passes with baseline below this (2.0)
     QCC_PERF_GATE_REPS     fresh repetitions, min taken (3)
     QCC_PERF_GATE_BENCHMARKS  comma-separated subset of the baseline's
                               benchmarks (maxcut-line,sqrt-n3,uccsd-n4)
     QCC_PERF_GATE_REQUIRE  comma-separated pass names that must each
                            contribute at least one qualifying gated row
                            (detect,schedule) — catches a baseline whose
                            hot passes all fell below the floor, which
                            would silently un-gate them
     QCC_PERF_GATE_HANDICAP pass=factor: multiply that pass's fresh time
                            (self-test hook: a seeded 2x slowdown must
                            fail the gate) *)
let perf_gate () =
  header "Perf gate: fresh per-pass wall times vs committed baseline";
  let getenv name default =
    match Sys.getenv_opt name with Some v -> v | None -> default
  in
  let baseline_path = getenv "QCC_PERF_BASELINE" "BENCH_pipeline.json" in
  let factor = float_of_string (getenv "QCC_PERF_GATE_FACTOR" "1.75") in
  let floor_ms = float_of_string (getenv "QCC_PERF_GATE_FLOOR_MS" "2.0") in
  let reps = int_of_string (getenv "QCC_PERF_GATE_REPS" "3") in
  let benches =
    String.split_on_char ','
      (getenv "QCC_PERF_GATE_BENCHMARKS" "maxcut-line,sqrt-n3,uccsd-n4")
  in
  let required =
    List.filter
      (fun s -> s <> "")
      (String.split_on_char ',' (getenv "QCC_PERF_GATE_REQUIRE" "detect,schedule"))
  in
  let handicap =
    match Sys.getenv_opt "QCC_PERF_GATE_HANDICAP" with
    | None -> None
    | Some s -> (
      match String.split_on_char '=' s with
      | [ pass; f ] -> Some (pass, float_of_string f)
      | _ -> failwith "QCC_PERF_GATE_HANDICAP: expected PASS=FACTOR")
  in
  let baseline_doc =
    match
      Qobs.Json.of_string
        (In_channel.with_open_text baseline_path In_channel.input_all)
    with
    | Ok j -> j
    | Error msg -> failwith (Printf.sprintf "%s: %s" baseline_path msg)
    | exception Sys_error msg -> failwith msg
  in
  let base = Hashtbl.create 64 in
  (match Qobs.Json.member "entries" baseline_doc with
   | Some (Qobs.Json.List entries) ->
     List.iter
       (fun e ->
         let str k =
           match Qobs.Json.member k e with
           | Some (Qobs.Json.Str s) -> s
           | _ -> ""
         in
         let bench = str "benchmark" and strat = str "strategy" in
         match Qobs.Json.member "passes" e with
         | Some (Qobs.Json.List passes) ->
           List.iter
             (fun p ->
               let pname =
                 match Qobs.Json.member "pass" p with
                 | Some (Qobs.Json.Str s) -> s
                 | _ -> ""
               in
               let wall =
                 match Qobs.Json.member "wall_ns" p with
                 | Some (Qobs.Json.Float f) -> f
                 | Some (Qobs.Json.Int n) -> float_of_int n
                 | _ -> 0.
               in
               let key = (bench, strat, pname) in
               Hashtbl.replace base key
                 (wall +. Option.value ~default:0. (Hashtbl.find_opt base key)))
             passes
         | _ -> ())
       entries
   | _ -> failwith (Printf.sprintf "%s: no entries array" baseline_path));
  (* fresh measurement: min over reps, per-circuit stage cache as the
     baseline run used *)
  let fresh = Hashtbl.create 64 in
  for _rep = 1 to reps do
    List.iter
      (fun bench ->
        let circuit = Qapps.Suite.lowered (Qapps.Suite.find bench) in
        (* cold memos, as when the baseline was recorded *)
        Qgdg.Commute.reset_memos ();
        Qflow.Summary.reset_memo ();
        let cache = Qcc.Pipeline.Cache.create () in
        List.iter
          (fun strategy ->
            let obs = Qobs.Trace.create () in
            let r = Compiler.compile ~obs ~cache ~strategy circuit in
            match r.Compiler.trace with
            | None -> ()
            | Some root ->
              let totals = Hashtbl.create 16 in
              List.iter
                (fun span ->
                  let k = span.Qobs.Span.name in
                  Hashtbl.replace totals k
                    (Qobs.Span.duration_ns span
                     +. Option.value ~default:0. (Hashtbl.find_opt totals k)))
                (Qobs.Span.children root);
              Hashtbl.iter
                (fun pname wall ->
                  let key = (bench, Strategy.to_string strategy, pname) in
                  match Hashtbl.find_opt fresh key with
                  | Some prev when prev <= wall -> ()
                  | _ -> Hashtbl.replace fresh key wall)
                totals)
          Strategy.all)
      benches
  done;
  (* qualifying rows: both sides present, baseline above the floor *)
  let rows =
    Hashtbl.fold
      (fun ((bench, _, pname) as key) base_ns acc ->
        if base_ns /. 1e6 < floor_ms || not (List.mem bench benches) then acc
        else
          match Hashtbl.find_opt fresh key with
          | None -> acc
          | Some f ->
            let f =
              match handicap with
              | Some (hp, hf) when hp = pname -> f *. hf
              | _ -> f
            in
            (key, base_ns, f) :: acc)
      base []
  in
  if rows = [] then
    failwith
      (Printf.sprintf
         "perf gate: no passes at or above the %.1f ms floor — regenerate \
          the baseline (bench/main.exe pipeline)" floor_ms);
  (* every required pass must actually be gated by at least one row:
     a pass whose baseline dropped below the floor everywhere would
     otherwise silently stop being measured *)
  List.iter
    (fun pass ->
      if not (List.exists (fun ((_, _, p), _, _) -> p = pass) rows) then
        failwith
          (Printf.sprintf
             "perf gate: required pass %S has no qualifying row (floor %.1f \
              ms) — lower QCC_PERF_GATE_FLOOR_MS, widen \
              QCC_PERF_GATE_BENCHMARKS, or drop it from \
              QCC_PERF_GATE_REQUIRE"
             pass floor_ms))
    required;
  let ratios = List.sort compare (List.map (fun (_, b, f) -> f /. b) rows) in
  let median = List.nth ratios (List.length ratios / 2) in
  (* calibration is itself clamped so a pathological baseline cannot
     silently raise the bar *)
  let skew = Float.max 0.25 (Float.min 4.0 median) in
  let normalized =
    List.sort
      (fun (_, _, _, a) (_, _, _, b) -> compare b a)
      (List.map (fun (key, b, f) -> (key, b, f, f /. b /. skew)) rows)
  in
  Printf.printf
    "  %d passes gated (floor %.1f ms, factor %.2f, reps %d, machine skew %.2fx)\n"
    (List.length rows) floor_ms factor reps skew;
  List.iteri
    (fun i ((bench, strat, pname), b, f, r) ->
      if i < 12 then
        Printf.printf "  %-14s %-16s %-12s base %9.2f ms | fresh %9.2f ms | x%5.2f\n"
          bench strat pname (b /. 1e6) (f /. 1e6) r)
    normalized;
  let failures = List.filter (fun (_, _, _, r) -> r > factor) normalized in
  if failures <> [] then begin
    List.iter
      (fun ((bench, strat, pname), b, f, r) ->
        Printf.eprintf
          "  FAIL %s/%s/%s: %.2f ms vs baseline %.2f ms (normalized %.2fx > %.2fx)\n%!"
          bench strat pname (f /. 1e6) (b /. 1e6) r factor)
      failures;
    exit 1
  end
  else Printf.printf "  perf gate OK\n%!"

(* ------------------------------------------------------------------ *)
(* Observability overhead: the default-off path must be free           *)

let obs_overhead () =
  header "Observability overhead: disabled collectors vs instrumented compile";
  let circuit = Qapps.Qaoa.triangle_example () in
  let config =
    { Compiler.default_config with
      Compiler.topology = Some (Qmap.Topology.line 3) }
  in
  let compile_off () =
    Compiler.compile ~config ~strategy:Strategy.Cls_aggregation circuit
  in
  let compile_on () =
    Compiler.compile ~config ~obs:(Qobs.Trace.create ())
      ~metrics:(Qobs.Metrics.create ()) ~strategy:Strategy.Cls_aggregation
      circuit
  in
  (* direct wall-clock comparison over many runs: default-off must stay
     within noise (<2%) of a build without instrumentation, and since the
     instrumented path IS this build, we check off vs on instead -- off
     must not be slower than on beyond noise *)
  let time_n n f =
    let t0 = Qobs.Clock.now_ns () in
    for _ = 1 to n do ignore (f ()) done;
    (Qobs.Clock.now_ns () -. t0) /. float_of_int n
  in
  ignore (time_n 3 compile_off);
  (* warm-up *)
  let off = time_n 20 compile_off in
  let on = time_n 20 compile_on in
  Printf.printf
    "  compile (cls+aggregation, Fig. 4 triangle): off %10.0f ns/run | on %10.0f ns/run (on/off %.3fx)\n%!"
    off on (on /. off);
  let open Bechamel in
  let tests =
    [ Test.make ~name:"with_span-disabled"
        (Staged.stage (fun () ->
             Qobs.Trace.with_span Qobs.Trace.disabled "pass" (fun () -> 42)));
      Test.make ~name:"metrics-tick-ambient-disabled"
        (Staged.stage (fun () -> Qobs.Metrics.tick "bench.noop"));
      Test.make ~name:"compile-obs-off" (Staged.stage compile_off);
      Test.make ~name:"compile-obs-on" (Staged.stage compile_on) ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let stats = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "  %-28s %12.1f ns/run\n%!" name est
          | Some _ | None -> Printf.printf "  %-28s (no estimate)\n%!" name)
        stats)
    tests

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the compiler passes                     *)

let bechamel () =
  header "Bechamel: compiler-pass microbenchmarks (maxcut-line workload)";
  let open Bechamel in
  let circuit = Qapps.Suite.lowered (Qapps.Suite.find "maxcut-line") in
  let latency gs = Qcontrol.Latency_model.isa_critical_path device gs in
  let make_gdg () = Qgdg.Gdg.of_circuit ~latency circuit in
  let contracted () =
    let g = make_gdg () in
    ignore (Qgdg.Diagonal.detect_and_contract ~latency g);
    g
  in
  let tests =
    [ Test.make ~name:"gdg-construction" (Staged.stage make_gdg);
      Test.make ~name:"diagonal-detection" (Staged.stage contracted);
      Test.make ~name:"cls-schedule"
        (Staged.stage (fun () -> Qsched.Cls.schedule (contracted ())));
      Test.make ~name:"placement-routing"
        (Staged.stage (fun () ->
             Qmap.Router.route_circuit ~topology:(Qmap.Topology.grid_for 20)
               circuit));
      Test.make ~name:"latency-model-zz"
        (Staged.stage (fun () ->
             block_time [ Gate.cnot 0 1; Gate.rz gamma 1; Gate.cnot 0 1 ]));
      Test.make ~name:"weyl-coordinates"
        (Staged.stage (fun () ->
             Qcontrol.Weyl.coordinates (Qgate.Unitary.of_kind Gate.Iswap)))
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let stats = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "  %-24s %12.0f ns/run\n%!" name est
          | Some _ | None -> Printf.printf "  %-24s (no estimate)\n%!" name)
        stats)
    tests

(* ------------------------------------------------------------------ *)

let certify_overhead () =
  header
    "Certification overhead: plain compile vs ~certify:true, per strategy";
  List.iter
    (fun bench ->
      let circuit = Qapps.Suite.lowered (Qapps.Suite.find bench) in
      List.iter
        (fun strategy ->
          let t0 = Qobs.Clock.now_ns () in
          ignore (Compiler.compile ~strategy circuit);
          let plain = Qobs.Clock.now_ns () -. t0 in
          let t1 = Qobs.Clock.now_ns () in
          let r = Compiler.compile ~certify:true ~strategy circuit in
          let certified = Qobs.Clock.now_ns () -. t1 in
          let facts =
            match r.Compiler.certificate with
            | Some c -> c.Qcert.Certificate.facts
            | None -> 0
          in
          Printf.printf
            "  %-14s %-16s plain %8.1f ms | certified %8.1f ms (%5.1fx) | %6d facts\n%!"
            bench
            (Strategy.to_string strategy)
            (plain /. 1e6) (certified /. 1e6)
            (certified /. plain) facts)
        Strategy.all)
    [ "maxcut-line"; "ising-n30"; "uccsd-n4" ]

(* ------------------------------------------------------------------ *)
(* Parallel smoke: 4 domains, disjoint benchmark×strategy compiles     *)

(* Runtime proof behind the domlint gate: four domains compile disjoint
   benchmark×strategy jobs concurrently — per-domain memos (Commute /
   Summary / Latency_model), per-domain ambient metrics shards, and one
   SHARED mutex-guarded stage cache — and every latency, merge count and
   certificate digest must be byte-identical to a cold sequential run of
   the same jobs. The lazy suite circuits are forced on the main domain
   before any spawn (see the [@@domain_safety unsafe] note on
   Qapps.Suite.all). *)
let par_smoke () =
  header "Parallel smoke: 4-domain compiles vs sequential (byte-identical)";
  let circuits =
    List.map
      (fun b -> (b, Qapps.Suite.lowered (Qapps.Suite.find b)))
      [ "maxcut-line"; "uccsd-n4" ]
  in
  let jobs =
    Array.of_list
      (List.concat_map
         (fun (b, c) -> List.map (fun s -> (b, s, c)) Strategy.all)
         circuits)
  in
  let fingerprint r =
    let digest =
      match r.Compiler.certificate with
      | Some c ->
        Digest.to_hex
          (Digest.string (Qobs.Json.to_string (Qcert.Certificate.to_json c)))
      | None -> "<uncertified>"
    in
    (Printf.sprintf "%h" r.Compiler.latency, r.Compiler.n_merges, digest)
  in
  (* sequential reference: every job from cold per-domain memos *)
  let expected =
    Array.map
      (fun (_, strategy, circuit) ->
        Compiler.reset_all_memos ();
        fingerprint (Compiler.compile ~certify:true ~strategy circuit))
      jobs
  in
  (* parallel: round-robin the jobs over 4 domains sharing one
     mutex-guarded stage cache (a hit skips only the work, so results
     and certificates are unchanged); each job compiles into its own
     metrics shard, merged after the join *)
  let n_domains = 4 in
  let cache = Qcc.Pipeline.Cache.create () in
  let worker d () =
    let out = ref [] in
    Array.iteri
      (fun i (_, strategy, circuit) ->
        if i mod n_domains = d then begin
          Compiler.reset_all_memos ();
          let metrics = Qobs.Metrics.create () in
          let r =
            Compiler.compile ~certify:true ~metrics ~cache ~strategy circuit
          in
          out := (i, fingerprint r, metrics) :: !out
        end)
      jobs;
    !out
  in
  let domains =
    List.init n_domains (fun d -> Domain.spawn (worker d))
  in
  let got = List.concat_map Domain.join domains in
  let shards = List.map (fun (_, _, m) -> m) got in
  let merged =
    List.fold_left Qobs.Metrics.merge (Qobs.Metrics.create ()) shards
  in
  let failed = ref false in
  (* the index multiset comes first: the per-job comparison below indexes
     [expected] by whatever indices the workers returned, so a dropped or
     double-assigned job would otherwise pass it silently *)
  let indices = List.sort compare (List.map (fun (i, _, _) -> i) got) in
  if indices <> List.init (Array.length jobs) Fun.id then begin
    let count i = List.length (List.filter (Int.equal i) indices) in
    let show l = String.concat ", " (List.map string_of_int l) in
    let missing =
      List.filter (fun i -> count i = 0)
        (List.init (Array.length jobs) Fun.id)
    in
    let duplicated =
      List.sort_uniq compare (List.filter (fun i -> count i > 1) indices)
    in
    Printf.eprintf
      "  FAIL: job index multiset mismatch (%d results for %d jobs; \
       missing [%s]; duplicated [%s])\n%!"
      (List.length got) (Array.length jobs) (show missing) (show duplicated);
    failed := true
  end;
  List.iter
    (fun (i, fp, _) ->
      let bench, strategy, _ = jobs.(i) in
      let (e_lat, e_merges, e_digest) = expected.(i)
      and (g_lat, g_merges, g_digest) = fp in
      if fp <> expected.(i) then begin
        Printf.eprintf
          "  FAIL %s/%s: parallel (lat %s, merges %d, cert %s) vs sequential \
           (lat %s, merges %d, cert %s)\n%!"
          bench (Strategy.to_string strategy) g_lat g_merges g_digest e_lat
          e_merges e_digest;
        failed := true
      end)
    got;
  Printf.printf
    "  %d jobs on %d domains: commute.checks %d | cache hits %d (misses %d) | %s\n%!"
    (Array.length jobs) n_domains
    (Qobs.Metrics.counter_value merged "commute.checks")
    (Qcc.Pipeline.Cache.hits cache)
    (Qcc.Pipeline.Cache.misses cache)
    (if !failed then "MISMATCH" else "all byte-identical");
  if !failed then exit 1

(* ------------------------------------------------------------------ *)
(* Parallel scaling: jobs ∈ {1,2,4,8} over the full matrix             *)

(* The real driver end-to-end: [Compiler.compile_matrix] over the whole
   benchmark×strategy matrix at each pool size, through the Parallel
   executor, the shared compute-once stage cache and per-job metrics
   shards — certification on, so the byte-identity assertion covers the
   certificate digests too. The jobs=1 sweep is the pooled sequential
   reference every other pool size must match cell for cell. *)
let par_scale () =
  header "Parallel scaling: jobs in {1,2,4,8} over the benchmark matrix \
          (BENCH_par.json)";
  let named =
    (* force the lazy suite circuits on the main domain before any spawn *)
    List.map
      (fun b -> (b, Qapps.Suite.lowered (Qapps.Suite.find b)))
      pipeline_benchmarks
  in
  let fingerprint r =
    let digest =
      match r.Compiler.certificate with
      | Some c ->
        Digest.to_hex
          (Digest.string (Qobs.Json.to_string (Qcert.Certificate.to_json c)))
      | None -> "<uncertified>"
    in
    (Printf.sprintf "%h" r.Compiler.latency, r.Compiler.n_merges, digest)
  in
  let sweep jobs =
    let t0 = Qobs.Clock.now_ns () in
    let rows = Compiler.compile_matrix ~certify:true ~jobs named in
    let wall_s = (Qobs.Clock.now_ns () -. t0) /. 1e9 in
    let cells =
      List.concat_map
        (fun (bench, results) ->
          List.map
            (fun (s, r) ->
              ((bench, Strategy.to_string s), fingerprint r,
               r.Compiler.compile_time))
            results)
        rows
    in
    (wall_s, cells)
  in
  let quantile q times =
    let a = Array.of_list (List.sort compare times) in
    let n = Array.length a in
    if n = 0 then 0.
    else a.(max 0 (min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1)))
  in
  let sweeps =
    List.map
      (fun jobs ->
        Printf.printf "  jobs=%d: compiling %d cells...\n%!" jobs
          (List.length named * List.length Strategy.all);
        let wall_s, cells = sweep jobs in
        (jobs, wall_s, cells))
      [ 1; 2; 4; 8 ]
  in
  let _, ref_wall, ref_cells = List.hd sweeps in
  let failed = ref false in
  List.iter
    (fun (jobs, _, cells) ->
      List.iter2
        (fun (key, e_fp, _) (key', g_fp, _) ->
          assert (key = key');
          if g_fp <> e_fp then begin
            let bench, strategy = key in
            let (e_lat, e_merges, e_digest) = e_fp
            and (g_lat, g_merges, g_digest) = g_fp in
            Printf.eprintf
              "  FAIL %s/%s at jobs=%d: (lat %s, merges %d, cert %s) vs \
               jobs=1 (lat %s, merges %d, cert %s)\n%!"
              bench strategy jobs g_lat g_merges g_digest e_lat e_merges
              e_digest;
            failed := true
          end)
        ref_cells cells)
    (List.tl sweeps);
  let sweep_json (jobs, wall_s, cells) =
    let job_times = List.map (fun (_, _, t) -> t) cells in
    Printf.printf
      "  jobs=%d: wall %6.2f s | speedup %5.2fx | job p50 %6.1f ms, p99 \
       %6.1f ms\n%!"
      jobs wall_s (ref_wall /. wall_s)
      (quantile 0.5 job_times *. 1e3)
      (quantile 0.99 job_times *. 1e3);
    Qobs.Json.Obj
      [ ("jobs", Qobs.Json.Int jobs);
        ("wall_s", Qobs.Json.Float wall_s);
        ("speedup", Qobs.Json.Float (ref_wall /. wall_s));
        ("job_wall_p50_s", Qobs.Json.Float (quantile 0.5 job_times));
        ("job_wall_p99_s", Qobs.Json.Float (quantile 0.99 job_times)) ]
  in
  let doc =
    Qobs.Json.Obj
      [ ("schema", Qobs.Json.Str "qcc.bench.par/1");
        ("benchmarks",
         Qobs.Json.List
           (List.map (fun b -> Qobs.Json.Str b) pipeline_benchmarks));
        ("strategies", Qobs.Json.Int (List.length Strategy.all));
        ("cells", Qobs.Json.Int (List.length ref_cells));
        ("identical", Qobs.Json.Bool (not !failed));
        ("sweeps", Qobs.Json.List (List.map sweep_json sweeps)) ]
  in
  Qobs.Json.write_file "BENCH_par.json" doc;
  Printf.printf "  wrote BENCH_par.json (%s)\n%!"
    (if !failed then "MISMATCH" else "all pool sizes byte-identical");
  if !failed then exit 1

let experiments =
  [ ("table1", table1);
    ("fig4", fig4);
    ("fig4_pulses", fig4_pulses);
    ("table3", table3);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("sec64", sec64);
    ("verify", verify);
    ("fidelity", fidelity);
    ("ablations", ablations);
    ("pipeline", pipeline);
    ("pipeline-smoke", pipeline_smoke);
    ("detect-speed", detect_speed);
    ("par-smoke", par_smoke);
    ("par-scale", par_scale);
    ("perf-gate", perf_gate);
    ("obs-overhead", obs_overhead);
    ("certify-overhead", certify_overhead);
    ("bechamel", bechamel) ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst experiments
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some run -> run ()
      | None ->
        Printf.eprintf "unknown experiment %S; available: %s\n" name
          (String.concat ", " (List.map fst experiments));
        exit 1)
    requested
